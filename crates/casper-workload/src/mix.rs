//! Named workload mixes — every workload the evaluation section uses.
//!
//! | name | composition | skew | where used |
//! |---|---|---|---|
//! | hybrid point, skewed | Q1 49% / Q4 50% / Q6 1% | recent | Fig. 12, 13a |
//! | hybrid range, skewed | Q3 49% / Q4 50% / Q6 1% | recent | Fig. 12 |
//! | read-only, skewed | Q1 94% / Q2 5% / Q6 1% | recent | Fig. 12, 13b |
//! | read-only, uniform | Q1 94% / Q2 5% / Q6 1% | uniform | Fig. 12 |
//! | update-only, skewed (UDI1) | Q4 80% / Q5 19% / Q6 1% | recent | Fig. 12, 14 |
//! | update-only, uniform (UDI2) | Q4 80% / Q5 19% / Q6 1% | uniform | Fig. 12, 13c, 14 |
//! | YCSB-A2 | Q1 50% / Q4 49% / Q6 1% | recent | Fig. 14 |
//! | SLA hybrid | Q1 89% / Q4 10% / Q6 1% | recent | Fig. 15 |
//!
//! "Every workload has a small fraction (1%) of updates (Q6) uniformly
//! distributed across the whole domain" (§7.1).

use crate::generator::{KeyDist, WorkloadGenerator};
use crate::hap::{HapQuery, HapSchema};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The named mixes of the evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MixKind {
    /// Q1/Q4/Q6 = 49/50/1, skewed to recent data (Figs. 12, 13a).
    HybridPointSkewed,
    /// Q3/Q4/Q6 = 49/50/1, skewed (Fig. 12).
    HybridRangeSkewed,
    /// Q1/Q2/Q6 = 94/5/1, skewed (Figs. 12, 13b).
    ReadOnlySkewed,
    /// Q1/Q2/Q6 = 94/5/1, uniform (Fig. 12).
    ReadOnlyUniform,
    /// Q4/Q5/Q6 = 80/19/1, skewed — the paper's UDI1 (Figs. 12, 14).
    UpdateOnlySkewed,
    /// Q4/Q5/Q6 = 80/19/1, uniform — UDI2 (Figs. 12, 13c, 14).
    UpdateOnlyUniform,
    /// Q1/Q4/Q6 = 50/49/1, skewed — YCSB-A2 (Fig. 14).
    YcsbA2,
    /// Q1/Q4/Q6 = 89/10/1, skewed (Fig. 15 SLA experiment).
    SlaHybrid,
}

impl MixKind {
    /// All named mixes, in Fig. 12 presentation order.
    pub fn all() -> [MixKind; 8] {
        [
            MixKind::HybridPointSkewed,
            MixKind::HybridRangeSkewed,
            MixKind::ReadOnlySkewed,
            MixKind::ReadOnlyUniform,
            MixKind::UpdateOnlySkewed,
            MixKind::UpdateOnlyUniform,
            MixKind::YcsbA2,
            MixKind::SlaHybrid,
        ]
    }

    /// The six Fig. 12 workloads.
    pub fn fig12() -> [MixKind; 6] {
        [
            MixKind::HybridPointSkewed,
            MixKind::HybridRangeSkewed,
            MixKind::ReadOnlySkewed,
            MixKind::ReadOnlyUniform,
            MixKind::UpdateOnlySkewed,
            MixKind::UpdateOnlyUniform,
        ]
    }

    /// Display label matching the paper's figure captions.
    pub fn label(&self) -> &'static str {
        match self {
            MixKind::HybridPointSkewed => "hybrid, skewed",
            MixKind::HybridRangeSkewed => "hybrid, range, skewed",
            MixKind::ReadOnlySkewed => "read-only, skewed",
            MixKind::ReadOnlyUniform => "read-only, uniform",
            MixKind::UpdateOnlySkewed => "update-only, skewed (UDI1)",
            MixKind::UpdateOnlyUniform => "update-only, uniform (UDI2)",
            MixKind::YcsbA2 => "YCSB-A2 (hybrid, skewed)",
            MixKind::SlaHybrid => "SLA hybrid (Q1 89/Q4 10/Q6 1)",
        }
    }

    /// Per-template weights `[Q1..Q6]` (sum to 100).
    pub fn weights(&self) -> [f64; 6] {
        match self {
            MixKind::HybridPointSkewed => [49.0, 0.0, 0.0, 50.0, 0.0, 1.0],
            MixKind::HybridRangeSkewed => [0.0, 0.0, 49.0, 50.0, 0.0, 1.0],
            MixKind::ReadOnlySkewed | MixKind::ReadOnlyUniform => [94.0, 5.0, 0.0, 0.0, 0.0, 1.0],
            MixKind::UpdateOnlySkewed | MixKind::UpdateOnlyUniform => {
                [0.0, 0.0, 0.0, 80.0, 19.0, 1.0]
            }
            MixKind::YcsbA2 => [50.0, 0.0, 0.0, 49.0, 0.0, 1.0],
            MixKind::SlaHybrid => [89.0, 0.0, 0.0, 10.0, 0.0, 1.0],
        }
    }

    /// Key distribution.
    pub fn key_dist(&self) -> KeyDist {
        match self {
            MixKind::ReadOnlyUniform | MixKind::UpdateOnlyUniform => KeyDist::Uniform,
            _ => KeyDist::skewed_recent(),
        }
    }
}

/// A concrete mix: template weights + key distribution, with a generator.
#[derive(Debug, Clone)]
pub struct Mix {
    /// Mix identity.
    pub kind: MixKind,
    generator: WorkloadGenerator,
}

impl Mix {
    /// Instantiate a named mix over a table of `rows` rows.
    pub fn new(kind: MixKind, schema: HapSchema, rows: u64) -> Self {
        Self {
            kind,
            generator: WorkloadGenerator::new(schema, rows, kind.key_dist()),
        }
    }

    /// Access the underlying generator (e.g. for the initial load).
    pub fn generator(&self) -> &WorkloadGenerator {
        &self.generator
    }

    /// Mutable generator access (to tune selectivity/projectivity).
    pub fn generator_mut(&mut self) -> &mut WorkloadGenerator {
        &mut self.generator
    }

    /// Generate a seeded stream of `n` queries following the mix weights.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<HapQuery> {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights = self.kind.weights();
        let total: f64 = weights.iter().sum();
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut pick = rng.gen_range(0.0..total);
            let mut template = 0usize;
            for (t, &w) in weights.iter().enumerate() {
                if pick < w {
                    template = t;
                    break;
                }
                pick -= w;
            }
            out.push(self.generator.query(template, &mut rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_100() {
        for kind in MixKind::all() {
            let s: f64 = kind.weights().iter().sum();
            assert!((s - 100.0).abs() < 1e-9, "{kind:?} sums to {s}");
        }
    }

    #[test]
    fn generated_stream_follows_weights() {
        let mix = Mix::new(MixKind::HybridPointSkewed, HapSchema::narrow(), 10_000);
        let ops = mix.generate(10_000, 7);
        let mut counts = [0usize; 6];
        for q in &ops {
            counts[q.index()] += 1;
        }
        assert!(
            (counts[0] as f64 / 10_000.0 - 0.49).abs() < 0.02,
            "Q1 share"
        );
        assert!(
            (counts[3] as f64 / 10_000.0 - 0.50).abs() < 0.02,
            "Q4 share"
        );
        assert!(
            (counts[5] as f64 / 10_000.0 - 0.01).abs() < 0.005,
            "Q6 share"
        );
        assert_eq!(counts[1] + counts[2] + counts[4], 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mix = Mix::new(MixKind::ReadOnlySkewed, HapSchema::narrow(), 1000);
        assert_eq!(mix.generate(100, 42), mix.generate(100, 42));
        assert_ne!(mix.generate(100, 42), mix.generate(100, 43));
    }

    #[test]
    fn uniform_mixes_use_uniform_keys() {
        assert!(matches!(
            MixKind::ReadOnlyUniform.key_dist(),
            KeyDist::Uniform
        ));
        assert!(matches!(
            MixKind::UpdateOnlySkewed.key_dist(),
            KeyDist::Hot(_)
        ));
    }

    #[test]
    fn update_only_mixes_have_no_reads() {
        let mix = Mix::new(MixKind::UpdateOnlyUniform, HapSchema::narrow(), 1000);
        let ops = mix.generate(500, 1);
        assert!(ops.iter().all(|q| !q.is_read() || q.name() == "Q6"));
    }

    #[test]
    fn fig12_has_six_workloads() {
        assert_eq!(MixKind::fig12().len(), 6);
    }
}
