//! Ghost-value allocation (§4.6, Eq. 18).
//!
//! "The operations that can benefit from having ghost values in the
//! partitions they target are inserts and updates. ... The distribution of
//! ghost values for block i ... uses the data movement per block as a
//! result of inserts and updates (`dm_part(i)`), as well as the total data
//! movement (`dm_tot`), to distribute ghost values proportionally to the
//! performance benefit they offer":
//!
//! ```text
//! GValloc(i) = dm_part(i) / dm_tot · GVtot
//! ```
//!
//! We aggregate `dm` per partition (inserts plus incoming updates, both
//! ripple directions) and round with the largest-remainder method so the
//! plan sums to exactly the budget.

use crate::fm::FrequencyModel;
use crate::layout::Segmentation;
use casper_storage::ghost::GhostPlan;

/// Data movement attracted by each partition: Σ over its blocks of
/// `in + utf + utb` (every insert and every incoming update needs a slot in
/// the worst case, §4.6).
pub fn data_movement_per_partition(fm: &FrequencyModel, seg: &Segmentation) -> Vec<f64> {
    assert_eq!(fm.n_blocks(), seg.n_blocks(), "block count mismatch");
    seg.ranges()
        .map(|r| r.map(|i| fm.ins[i] + fm.utf[i] + fm.utb[i]).sum())
        .collect()
}

/// Distribute `budget` ghost slots over the partitions of `seg`
/// proportionally to the data movement they receive (Eq. 18).
pub fn allocate_ghosts(fm: &FrequencyModel, seg: &Segmentation, budget: usize) -> GhostPlan {
    let dm = data_movement_per_partition(fm, seg);
    GhostPlan::proportional(&dm, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_sums_inserts_and_incoming_updates() {
        let mut fm = FrequencyModel::new(4);
        fm.ins = vec![1.0, 0.0, 0.0, 3.0];
        fm.utf = vec![0.0, 2.0, 0.0, 0.0];
        fm.utb = vec![0.0, 0.0, 4.0, 0.0];
        let seg = Segmentation::new(vec![2, 4]);
        let dm = data_movement_per_partition(&fm, &seg);
        assert_eq!(dm, vec![3.0, 7.0]);
    }

    #[test]
    fn allocation_is_proportional_and_exact() {
        let mut fm = FrequencyModel::new(4);
        fm.ins = vec![1.0, 0.0, 0.0, 3.0];
        let seg = Segmentation::new(vec![2, 4]);
        let plan = allocate_ghosts(&fm, &seg, 100);
        assert_eq!(plan.total(), 100);
        assert_eq!(plan.counts(), &[25, 75]);
    }

    #[test]
    fn no_movement_spreads_evenly() {
        let fm = FrequencyModel::new(6);
        let seg = Segmentation::new(vec![2, 4, 6]);
        let plan = allocate_ghosts(&fm, &seg, 9);
        assert_eq!(plan.total(), 9);
        assert_eq!(plan.counts(), &[3, 3, 3]);
    }

    #[test]
    fn update_heavy_partition_gets_the_budget() {
        // All updates land in the last partition → it should receive
        // (nearly) the whole budget.
        let mut fm = FrequencyModel::new(8);
        fm.udb = vec![0.0; 8];
        fm.udb[0] = 10.0;
        fm.utb = vec![0.0; 8];
        fm.utb[7] = 10.0;
        let seg = Segmentation::new(vec![4, 8]);
        let plan = allocate_ghosts(&fm, &seg, 10);
        assert_eq!(plan.counts(), &[0, 10]);
    }

    #[test]
    fn zero_budget_zero_plan() {
        let mut fm = FrequencyModel::new(2);
        fm.ins = vec![5.0, 5.0];
        let seg = Segmentation::new(vec![1, 2]);
        let plan = allocate_ghosts(&fm, &seg, 0);
        assert_eq!(plan.total(), 0);
    }
}
