//! Segmentations: the solver-side representation of a partitioning.
//!
//! While the storage layer represents a partitioning as the boundary
//! bit-vector of §4.1 ([`casper_storage::PartitionSpec`]), the solver works
//! with the equivalent *segmentation*: the sorted list of exclusive
//! partition end offsets. The two convert losslessly.

use casper_storage::PartitionSpec;

/// A partitioning of `n` blocks as exclusive end offsets
/// (`ends.last() == n`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segmentation {
    ends: Vec<usize>,
}

impl Segmentation {
    /// Build from exclusive end offsets.
    ///
    /// # Panics
    /// Panics if `ends` is empty, not strictly increasing, or starts at 0.
    pub fn new(ends: Vec<usize>) -> Self {
        assert!(!ends.is_empty(), "need at least one partition");
        assert!(ends[0] > 0, "first end must be positive");
        assert!(
            ends.windows(2).all(|w| w[0] < w[1]),
            "ends must be strictly increasing"
        );
        Self { ends }
    }

    /// Single partition over `n` blocks.
    pub fn single(n: usize) -> Self {
        Self::new(vec![n])
    }

    /// Equi-width segmentation with `k` partitions (first partitions absorb
    /// the remainder), mirroring [`PartitionSpec::equi_width`].
    pub fn equi(n: usize, k: usize) -> Self {
        let k = k.clamp(1, n);
        let base = n / k;
        let rem = n % k;
        let mut ends = Vec::with_capacity(k);
        let mut e = 0;
        for p in 0..k {
            e += base + usize::from(p < rem);
            ends.push(e);
        }
        Self { ends }
    }

    /// Build from a boundary bit-vector (`p_i` variables).
    pub fn from_boundaries(p: &[bool]) -> Self {
        assert!(p.last().copied().unwrap_or(false), "p_{{N-1}} must be set");
        Self {
            ends: p
                .iter()
                .enumerate()
                .filter(|(_, &b)| b)
                .map(|(i, _)| i + 1)
                .collect(),
        }
    }

    /// The boundary bit-vector.
    pub fn to_boundaries(&self) -> Vec<bool> {
        let n = self.n_blocks();
        let mut p = vec![false; n];
        for &e in &self.ends {
            p[e - 1] = true;
        }
        p
    }

    /// Convert to a storage-layer [`PartitionSpec`].
    pub fn to_spec(&self) -> PartitionSpec {
        PartitionSpec::from_block_ends(&self.ends, self.n_blocks())
    }

    /// Total blocks covered.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        *self.ends.last().expect("non-empty")
    }

    /// Number of partitions.
    #[inline]
    pub fn partition_count(&self) -> usize {
        self.ends.len()
    }

    /// Exclusive end offsets.
    #[inline]
    pub fn ends(&self) -> &[usize] {
        &self.ends
    }

    /// Iterate partitions as half-open block ranges.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        let mut start = 0usize;
        self.ends.iter().map(move |&e| {
            let r = start..e;
            start = e;
            r
        })
    }

    /// Partition sizes in blocks.
    pub fn sizes(&self) -> Vec<usize> {
        self.ranges().map(|r| r.len()).collect()
    }

    /// Widest partition, in blocks.
    pub fn max_partition_blocks(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Index of the partition containing block `i`.
    pub fn partition_of(&self, i: usize) -> usize {
        self.ends.partition_point(|&e| e <= i)
    }

    /// First block of the partition containing block `i`.
    pub fn partition_start(&self, i: usize) -> usize {
        let p = self.partition_of(i);
        if p == 0 {
            0
        } else {
            self.ends[p - 1]
        }
    }

    /// One-past-the-last block of the partition containing block `i`.
    pub fn partition_end(&self, i: usize) -> usize {
        self.ends[self.partition_of(i)]
    }
}

impl std::fmt::Display for Segmentation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, r) in self.ranges().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{}", r.len())?;
        }
        write!(
            f,
            "] ({} parts / {} blocks)",
            self.partition_count(),
            self.n_blocks()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_round_trip() {
        let p = vec![false, true, false, false, true, true];
        let seg = Segmentation::from_boundaries(&p);
        assert_eq!(seg.ends(), &[2, 5, 6]);
        assert_eq!(seg.to_boundaries(), p);
    }

    #[test]
    fn spec_round_trip() {
        let seg = Segmentation::new(vec![3, 4, 8]);
        let spec = seg.to_spec();
        assert_eq!(spec.partition_count(), 3);
        let sizes: Vec<usize> = spec.block_ranges().map(|r| r.len()).collect();
        assert_eq!(sizes, seg.sizes());
    }

    #[test]
    fn partition_lookup() {
        let seg = Segmentation::new(vec![2, 5, 8]);
        assert_eq!(seg.partition_of(0), 0);
        assert_eq!(seg.partition_of(1), 0);
        assert_eq!(seg.partition_of(2), 1);
        assert_eq!(seg.partition_of(4), 1);
        assert_eq!(seg.partition_of(7), 2);
        assert_eq!(seg.partition_start(4), 2);
        assert_eq!(seg.partition_end(4), 5);
    }

    #[test]
    fn equi_matches_storage_equi_width() {
        for (n, k) in [(10, 4), (8, 8), (7, 3), (5, 1)] {
            let seg = Segmentation::equi(n, k);
            let spec = casper_storage::PartitionSpec::equi_width(n, k);
            let spec_sizes: Vec<usize> = spec.block_ranges().map(|r| r.len()).collect();
            assert_eq!(seg.sizes(), spec_sizes, "n={n} k={k}");
        }
    }

    #[test]
    fn display_is_compact() {
        let seg = Segmentation::new(vec![2, 3, 8]);
        let s = format!("{seg}");
        assert!(s.contains("[2 | 1 | 5]"));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_ends() {
        let _ = Segmentation::new(vec![3, 3]);
    }
}
