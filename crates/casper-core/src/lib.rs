//! # casper-core
//!
//! The column-layout optimizer of *"Optimal Column Layout for Hybrid
//! Workloads"* (Athanassoulis, Bøgh, Idreos — VLDB 2019): given workload
//! knowledge and performance requirements, compute the optimal range
//! partitioning and ghost-value allocation for a column chunk.
//!
//! The pipeline mirrors the paper:
//!
//! 1. **[`fm`] — Frequency Model (§4.2/§4.3)**: ten per-block histograms
//!    capturing how a sample workload (or parametric access distributions)
//!    touches each logical block of the sorted domain.
//! 2. **[`cost`] — Cost model (§4.4)**: closed-form block-access cost of
//!    every operation over an arbitrary partitioning, parameterized by four
//!    calibrated constants (`RR`, `RW`, `SR`, `SW`).
//! 3. **[`solver`] — Optimization (§5)**: the paper solves a linearized
//!    binary integer program with Mosek; we provide (a) an exact `O(N²)`
//!    segmentation dynamic program that provably minimizes the same
//!    objective (Eq. 16) under both SLA constraint families (Eq. 21),
//!    (b) the *literal* Eq. 20 BIP model plus a branch-and-bound solver,
//!    and (c) exhaustive enumeration — all cross-validated against each
//!    other in tests.
//! 4. **[`ghost_alloc`] — Ghost values (§4.6, Eq. 18)**: distribute a slack
//!    budget proportionally to the data movement each partition receives.
//! 5. **[`robust`] — Robustness (§7.5)**: evaluate a layout under
//!    rotational and mass shift of the trained workload.

pub mod cost;
pub mod fm;
pub mod ghost_alloc;
pub mod layout;
pub mod robust;
pub mod solver;

pub use cost::{BlockTerms, CostConstants};
pub use fm::{FrequencyModel, Op};
pub use layout::Segmentation;
pub use solver::{LayoutOptimizer, SolverConstraints};
