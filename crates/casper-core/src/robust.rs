//! Robustness to workload uncertainty (§7.5, Fig. 16).
//!
//! A layout is trained on one Frequency Model but served another. The paper
//! studies two uncertainty axes:
//!
//! * **rotational shift** — the access patterns keep their shape but target
//!   a different part of the domain (histograms rotate by a fraction of the
//!   block count);
//! * **mass shift** — operation mix changes: a fraction of point-query mass
//!   converts into insert mass (and vice versa for negative shifts).
//!
//! [`evaluate_robustness`] reports the normalized latency of the trained
//! layout under the shifted workload, relative to the layout that would
//! have been optimal for the shifted workload — exactly the Fig. 16b
//! metric.

use crate::cost::{cost_of_segmentation, BlockTerms, CostConstants};
use crate::fm::FrequencyModel;
use crate::layout::Segmentation;
use crate::solver::{dp, SolverConstraints};

/// Rotate every histogram of the model by `frac` of the domain
/// (cyclically). `frac` in `[0, 1)`; Fig. 16b sweeps 0–50%.
pub fn rotational_shift(fm: &FrequencyModel, frac: f64) -> FrequencyModel {
    let n = fm.n_blocks();
    let shift = ((frac.rem_euclid(1.0)) * n as f64).round() as usize % n;
    let mut out = fm.clone();
    if shift == 0 {
        return out;
    }
    {
        let src = fm.histograms();
        let mut dst = out.histograms_mut();
        for (d, (_, s)) in dst.iter_mut().zip(src.iter()) {
            for i in 0..n {
                d[(i + shift) % n] = s[i];
            }
        }
    }
    out
}

/// Move `frac` of the point-query mass into insert mass (positive `frac`)
/// or insert mass into point-query mass (negative), preserving each
/// histogram's shape. Fig. 16b sweeps −25%…+25%.
pub fn mass_shift(fm: &FrequencyModel, frac: f64) -> FrequencyModel {
    let mut out = fm.clone();
    let n = fm.n_blocks();
    if frac > 0.0 {
        let moved: f64 = fm.pq.iter().sum::<f64>() * frac.min(1.0);
        let ins_total: f64 = fm.ins.iter().sum();
        for i in 0..n {
            out.pq[i] *= 1.0 - frac.min(1.0);
            // Added insert mass follows the existing insert shape (or
            // uniform when there were no inserts).
            out.ins[i] += if ins_total > 0.0 {
                moved * fm.ins[i] / ins_total
            } else {
                moved / n as f64
            };
        }
    } else if frac < 0.0 {
        let f = (-frac).min(1.0);
        let moved: f64 = fm.ins.iter().sum::<f64>() * f;
        let pq_total: f64 = fm.pq.iter().sum();
        for i in 0..n {
            out.ins[i] *= 1.0 - f;
            out.pq[i] += if pq_total > 0.0 {
                moved * fm.pq[i] / pq_total
            } else {
                moved / n as f64
            };
        }
    }
    out
}

/// Result of one robustness evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Modeled cost of the trained layout under the shifted workload.
    pub trained_cost: f64,
    /// Modeled cost of the layout re-optimized for the shifted workload.
    pub oracle_cost: f64,
}

impl RobustnessPoint {
    /// Normalized latency (≥ 1; 1 means the trained layout is still
    /// optimal) — the Fig. 16b y-axis.
    pub fn normalized_latency(&self) -> f64 {
        if self.oracle_cost <= 0.0 {
            1.0
        } else {
            self.trained_cost / self.oracle_cost
        }
    }
}

/// Evaluate a trained layout against a shifted workload.
pub fn evaluate_robustness(
    trained: &Segmentation,
    shifted_fm: &FrequencyModel,
    constants: &CostConstants,
    constraints: &SolverConstraints,
) -> RobustnessPoint {
    let terms = BlockTerms::from_fm(shifted_fm, constants);
    let trained_cost = cost_of_segmentation(trained, &terms);
    let oracle = dp::solve(&terms, constraints);
    RobustnessPoint {
        trained_cost,
        oracle_cost: oracle.cost,
    }
}

// ---------------------------------------------------------------------
// Robust optimization (the paper's stated future work: "a new problem
// formulation using robust optimization techniques [21, 56]").
// ---------------------------------------------------------------------

/// A scenario-based uncertainty set: the cross product of rotational and
/// mass shifts applied to a nominal Frequency Model.
#[derive(Debug, Clone)]
pub struct UncertaintySet {
    /// Rotational shifts (fractions of the domain) to consider.
    pub rotations: Vec<f64>,
    /// Mass shifts (pq↔insert fractions) to consider.
    pub mass_shifts: Vec<f64>,
}

impl UncertaintySet {
    /// The Fig. 16 grid at modest uncertainty: ±10% rotation, ±15% mass.
    pub fn moderate() -> Self {
        Self {
            rotations: vec![0.0, 0.05, 0.10],
            mass_shifts: vec![-0.15, 0.0, 0.15],
        }
    }

    /// Materialize every scenario.
    pub fn scenarios(&self, nominal: &FrequencyModel) -> Vec<FrequencyModel> {
        let mut out = Vec::with_capacity(self.rotations.len() * self.mass_shifts.len());
        for &rot in &self.rotations {
            for &ms in &self.mass_shifts {
                out.push(rotational_shift(&mass_shift(nominal, ms), rot));
            }
        }
        out
    }
}

/// Optimal layout for the *expected* cost over the uncertainty set.
///
/// Because Eq. 16 is linear in the Frequency Model histograms, the expected
/// cost over scenarios equals the cost under the scenario-averaged model —
/// so one exact DP solve on the mixture FM is provably optimal for the
/// expected-cost objective. This is the "careful selection of the input of
/// the optimization" the abstract alludes to.
pub fn optimize_expected(
    nominal: &FrequencyModel,
    set: &UncertaintySet,
    constants: &CostConstants,
    constraints: &SolverConstraints,
) -> crate::solver::Solution {
    let scenarios = set.scenarios(nominal);
    let mut mixture = FrequencyModel::new(nominal.n_blocks());
    for s in &scenarios {
        mixture.merge(s);
    }
    mixture.scale(1.0 / scenarios.len() as f64);
    dp::solve(&BlockTerms::from_fm(&mixture, constants), constraints)
}

/// Min–max robust layout: pick, among the per-scenario optima plus the
/// expected-cost optimum, the candidate whose *worst-case* cost over the
/// set is smallest. Exact min–max over all segmentations is outside the
/// DP's reach; this candidate-set approach is the standard scenario
/// heuristic and is reported with its achieved worst case.
pub fn optimize_minmax(
    nominal: &FrequencyModel,
    set: &UncertaintySet,
    constants: &CostConstants,
    constraints: &SolverConstraints,
) -> (Segmentation, f64) {
    let scenarios = set.scenarios(nominal);
    let all_terms: Vec<BlockTerms> = scenarios
        .iter()
        .map(|s| BlockTerms::from_fm(s, constants))
        .collect();
    let mut candidates: Vec<Segmentation> = all_terms
        .iter()
        .map(|t| dp::solve(t, constraints).seg)
        .collect();
    candidates.push(optimize_expected(nominal, set, constants, constraints).seg);
    let worst = |seg: &Segmentation| -> f64 {
        all_terms
            .iter()
            .map(|t| cost_of_segmentation(seg, t))
            .fold(f64::NEG_INFINITY, f64::max)
    };
    candidates
        .into_iter()
        .map(|seg| {
            let w = worst(&seg);
            (seg, w)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
        .expect("non-empty candidate set")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::{AccessDistribution, WorkloadSpec};

    fn fig16_fm(n: usize) -> FrequencyModel {
        // Fig. 16a: point queries mostly target the latter part of the
        // domain, inserts the first part; both at 50% frequency.
        FrequencyModel::from_distributions(
            n,
            &WorkloadSpec {
                point: Some((
                    500.0,
                    AccessDistribution::Gaussian {
                        mean: 0.75,
                        std: 0.12,
                    },
                )),
                insert: Some((
                    500.0,
                    AccessDistribution::Gaussian {
                        mean: 0.25,
                        std: 0.12,
                    },
                )),
                ..WorkloadSpec::none()
            },
        )
    }

    #[test]
    fn rotation_preserves_mass() {
        let fm = fig16_fm(32);
        for frac in [0.0, 0.1, 0.25, 0.5, 0.99] {
            let r = rotational_shift(&fm, frac);
            assert!(
                (r.total_mass() - fm.total_mass()).abs() < 1e-6,
                "mass changed at frac={frac}"
            );
        }
    }

    #[test]
    fn rotation_moves_the_peak() {
        let fm = fig16_fm(32);
        let r = rotational_shift(&fm, 0.5);
        let peak = |h: &[f64]| {
            h.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        let p0 = peak(&fm.pq);
        let p1 = peak(&r.pq);
        assert_eq!((p0 + 16) % 32, p1);
    }

    #[test]
    fn zero_rotation_is_identity() {
        let fm = fig16_fm(16);
        assert_eq!(rotational_shift(&fm, 0.0), fm);
    }

    #[test]
    fn mass_shift_conserves_total() {
        let fm = fig16_fm(32);
        for frac in [-0.25, -0.1, 0.0, 0.15, 0.25] {
            let s = mass_shift(&fm, frac);
            assert!(
                (s.total_mass() - fm.total_mass()).abs() < 1e-6,
                "mass not conserved at {frac}"
            );
            s.validate().unwrap();
        }
    }

    #[test]
    fn positive_mass_shift_moves_pq_to_inserts() {
        let fm = fig16_fm(16);
        let s = mass_shift(&fm, 0.2);
        assert!(s.pq.iter().sum::<f64>() < fm.pq.iter().sum::<f64>());
        assert!(s.ins.iter().sum::<f64>() > fm.ins.iter().sum::<f64>());
    }

    #[test]
    fn unshifted_workload_is_optimal() {
        let fm = fig16_fm(32);
        let constants = CostConstants::paper();
        let terms = BlockTerms::from_fm(&fm, &constants);
        let trained = dp::solve(&terms, &SolverConstraints::none()).seg;
        let p = evaluate_robustness(&trained, &fm, &constants, &SolverConstraints::none());
        assert!((p.normalized_latency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn expected_optimal_beats_nominal_on_average() {
        let fm = fig16_fm(64);
        let constants = CostConstants::paper();
        let constraints = SolverConstraints::none();
        let set = UncertaintySet::moderate();
        let nominal = dp::solve(&BlockTerms::from_fm(&fm, &constants), &constraints).seg;
        let robust = optimize_expected(&fm, &set, &constants, &constraints).seg;
        let scenarios = set.scenarios(&fm);
        let avg = |seg: &Segmentation| -> f64 {
            scenarios
                .iter()
                .map(|s| cost_of_segmentation(seg, &BlockTerms::from_fm(s, &constants)))
                .sum::<f64>()
                / scenarios.len() as f64
        };
        assert!(
            avg(&robust) <= avg(&nominal) + 1e-6,
            "expected-robust {} vs nominal {}",
            avg(&robust),
            avg(&nominal)
        );
    }

    #[test]
    fn minmax_layout_bounds_worst_case() {
        let fm = fig16_fm(48);
        let constants = CostConstants::paper();
        let constraints = SolverConstraints::none();
        let set = UncertaintySet {
            rotations: vec![0.0, 0.2, 0.4],
            mass_shifts: vec![-0.2, 0.2],
        };
        let nominal = dp::solve(&BlockTerms::from_fm(&fm, &constants), &constraints).seg;
        let (robust, robust_worst) = optimize_minmax(&fm, &set, &constants, &constraints);
        let worst = |seg: &Segmentation| -> f64 {
            set.scenarios(&fm)
                .iter()
                .map(|s| cost_of_segmentation(seg, &BlockTerms::from_fm(s, &constants)))
                .fold(f64::NEG_INFINITY, f64::max)
        };
        assert!((worst(&robust) - robust_worst).abs() < 1e-6);
        assert!(
            robust_worst <= worst(&nominal) + 1e-6,
            "min-max candidate must not be worse than the nominal layout"
        );
    }

    #[test]
    fn uncertainty_set_scenario_count() {
        let set = UncertaintySet::moderate();
        assert_eq!(set.scenarios(&fig16_fm(8)).len(), 9);
    }

    #[test]
    fn large_rotation_degrades_small_rotation_absorbed() {
        // The Fig. 16b shape: small shifts cost little, large shifts hit a
        // cliff.
        let fm = fig16_fm(64);
        let constants = CostConstants::paper();
        let terms = BlockTerms::from_fm(&fm, &constants);
        let trained = dp::solve(&terms, &SolverConstraints::none()).seg;
        let small = evaluate_robustness(
            &trained,
            &rotational_shift(&fm, 0.05),
            &constants,
            &SolverConstraints::none(),
        );
        let large = evaluate_robustness(
            &trained,
            &rotational_shift(&fm, 0.5),
            &constants,
            &SolverConstraints::none(),
        );
        assert!(small.normalized_latency() < large.normalized_latency());
        assert!(
            small.normalized_latency() < 1.25,
            "small shift should be absorbed"
        );
        assert!(large.normalized_latency() > 1.05, "large shift should cost");
    }
}
