//! The literal Eq. 20 binary integer program and a branch-and-bound solver.
//!
//! The paper linearizes the Eq. 19 products `Π(1−p_k)` with auxiliary
//! binaries `y_{i,j} = Π_{k=i}^{j} (1−p_k)` and constraints
//!
//! ```text
//! y_{i,i} = 1 − p_i
//! y_{i,j} ≤ 1 − p_j              (i < j)
//! y_{i,j} ≥ 1 − Σ_{k=i}^{j} p_k
//! ```
//!
//! then hands the model to Mosek. [`BipModel`] materializes exactly that
//! formulation — variables, objective coefficients, constraint counts —
//! and [`solve`] optimizes it with depth-first branch-and-bound over the
//! boundary variables, using the suffix-restricted DP optimum as an
//! admissible lower bound. Because the bound is admissible the result is
//! exact, which lets tests assert `BIP == DP == exhaustive`.

use super::{dp, Solution, SolverConstraints};
use crate::cost::BlockTerms;
use crate::layout::Segmentation;

/// The Eq. 20 model, materialized.
#[derive(Debug, Clone)]
pub struct BipModel {
    n: usize,
    /// Objective coefficient of each `p_j` (prefix sums of `parts_term`).
    p_coeff: Vec<f64>,
    /// Objective coefficient of `y_{i,j}` (flattened upper-triangular):
    /// `bck_{j+1} + fwd_i` per the Eq. 20 double sums.
    y_coeff: Vec<f64>,
    /// Constant objective offset (`Σ fixed_term_i`).
    constant: f64,
}

impl BipModel {
    /// Build the model from per-block terms.
    pub fn from_terms(terms: &BlockTerms) -> Self {
        let n = terms.n_blocks();
        // p_j appears in Σ_i parts_i · Σ_{j≥i} p_j with coefficient
        // Σ_{i≤j} parts_i.
        let mut p_coeff = Vec::with_capacity(n);
        let mut acc = 0.0;
        for j in 0..n {
            acc += terms.parts[j];
            p_coeff.push(acc);
        }
        // y_{a,b} appears in bck_term_i · Σ_j y_{j, i−1} (i = b+1, a ≤ b)
        // and in fwd_term_i · Σ_j y_{i, N−j−1} (i = a, b ≥ a).
        let mut y_coeff = Vec::with_capacity(n * (n + 1) / 2);
        for a in 0..n {
            for b in a..n {
                let bck = if b + 1 < n { terms.bck[b + 1] } else { 0.0 };
                let fwd = terms.fwd[a];
                y_coeff.push(bck + fwd);
            }
        }
        Self {
            n,
            p_coeff,
            y_coeff,
            constant: terms.fixed.iter().sum(),
        }
    }

    /// Number of blocks.
    pub fn n_blocks(&self) -> usize {
        self.n
    }

    /// Number of binary variables: `N` boundary bits plus the
    /// upper-triangular `y` matrix.
    pub fn num_variables(&self) -> usize {
        self.n + self.y_coeff.len()
    }

    /// Number of linear constraints in the Eq. 20 formulation:
    /// `p_{N−1}=1`, `N` equalities `y_{i,i} = 1−p_i`, one `≤` per strict
    /// pair, one `≥` per pair.
    pub fn num_constraints(&self) -> usize {
        let pairs = self.n * (self.n + 1) / 2;
        let strict_pairs = pairs - self.n;
        1 + self.n + strict_pairs + pairs
    }

    #[inline]
    fn y_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.n);
        // Row-major upper triangle: row i starts at Σ_{r<i}(n − r)
        // = i·n − i(i−1)/2, and j sits at offset j − i within the row.
        i * self.n - (i * i - i) / 2 + (j - i)
    }

    /// Evaluate the Eq. 20 objective for a boundary vector, completing the
    /// `y` variables at their optimal (minimal) feasible values
    /// (`y_{i,j} = 1` iff no boundary in `[i, j]`). This is exactly the
    /// linearized objective a BIP solver would report.
    pub fn objective_of_boundaries(&self, p: &[bool]) -> f64 {
        assert_eq!(p.len(), self.n);
        assert!(p[self.n - 1], "p_{{N−1}} = 1 constraint violated");
        let mut total = self.constant;
        for (j, &bit) in p.iter().enumerate() {
            if bit {
                total += self.p_coeff[j];
            }
        }
        // y_{i,j} = 1 iff the run [i, j] contains no boundary.
        for i in 0..self.n {
            let mut j = i;
            while j < self.n && !p[j] {
                total += self.y_coeff[self.y_index(i, j)];
                j += 1;
            }
            // Runs stop at the first boundary: y_{i,j} with p_j=1 is 0 via
            // the ≤ constraint; everything beyond has Σp ≥ 1 so the ≥
            // constraint is slack and minimization sets y = 0.
        }
        total
    }

    /// Check that an assignment (p plus implied y) satisfies every Eq. 20
    /// constraint.
    pub fn check_feasible(&self, p: &[bool]) -> Result<(), String> {
        if p.len() != self.n {
            return Err("wrong arity".into());
        }
        if !p[self.n - 1] {
            return Err("p_{N-1} != 1".into());
        }
        Ok(())
    }
}

/// Search statistics reported by the branch-and-bound solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Nodes expanded.
    pub nodes: u64,
    /// Nodes pruned by the lower bound.
    pub pruned: u64,
}

/// Exact branch-and-bound over the Eq. 20 model.
///
/// Branches on segment end positions left to right (equivalent to the `p`
/// bits given `p_{N−1} = 1`); prunes with the admissible bound
/// `cost(prefix) + unconstrained-DP(suffix)`.
pub fn solve(terms: &BlockTerms, constraints: &SolverConstraints) -> (Solution, SearchStats) {
    let n = terms.n_blocks();
    assert!(constraints.feasible(n), "infeasible constraints");
    let costs = dp::SegmentCosts::new(terms);
    // Admissible suffix bound: optimal unconstrained segmentation of
    // [s, N). Computed by a backwards DP.
    let mut suffix = vec![f64::INFINITY; n + 1];
    suffix[n] = 0.0;
    for s in (0..n).rev() {
        for e in s + 1..=n {
            let c = costs.segment_cost(s, e - 1) + suffix[e];
            if c < suffix[s] {
                suffix[s] = c;
            }
        }
    }
    // Relax the bound when parts_term prefix sums can be negative: the
    // unconstrained suffix DP is exact for the suffix subproblem, and
    // segment costs already embed the trail_parts accounting, so it remains
    // a true lower bound for any completion.
    let mps = constraints.max_partition_blocks.unwrap_or(n).min(n);
    let kcap = constraints.max_partitions.unwrap_or(n).min(n);
    let mut stats = SearchStats::default();
    let mut best_cost = f64::INFINITY;
    let mut best_ends: Vec<usize> = Vec::new();
    let mut ends: Vec<usize> = Vec::new();

    fn dfs(
        s: usize,
        used: usize,
        acc: f64,
        n: usize,
        mps: usize,
        kcap: usize,
        costs: &dp::SegmentCosts,
        suffix: &[f64],
        ends: &mut Vec<usize>,
        best_cost: &mut f64,
        best_ends: &mut Vec<usize>,
        stats: &mut SearchStats,
    ) {
        stats.nodes += 1;
        if s == n {
            if acc < *best_cost {
                *best_cost = acc;
                *best_ends = ends.clone();
            }
            return;
        }
        if used == kcap {
            stats.pruned += 1;
            return;
        }
        if acc + suffix[s] >= *best_cost {
            stats.pruned += 1;
            return;
        }
        for e in s + 1..=(s + mps).min(n) {
            // Remaining blocks must fit in the remaining partition budget.
            if (n - e) > (kcap - used - 1) * mps {
                continue;
            }
            ends.push(e);
            dfs(
                e,
                used + 1,
                acc + costs.segment_cost(s, e - 1),
                n,
                mps,
                kcap,
                costs,
                suffix,
                ends,
                best_cost,
                best_ends,
                stats,
            );
            ends.pop();
        }
    }

    dfs(
        0,
        0,
        0.0,
        n,
        mps,
        kcap,
        &costs,
        &suffix,
        &mut ends,
        &mut best_cost,
        &mut best_ends,
        &mut stats,
    );
    assert!(best_cost.is_finite(), "no feasible assignment found");
    (
        Solution {
            seg: Segmentation::new(best_ends),
            cost: best_cost,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_of_boundaries, CostConstants};
    use crate::fm::FrequencyModel;
    use crate::solver::exhaustive;

    fn random_fm(n: usize, seed: u64) -> FrequencyModel {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fm = FrequencyModel::new(n);
        for i in 0..n {
            fm.pq[i] = rng.gen_range(0.0..8.0);
            fm.ins[i] = rng.gen_range(0.0..4.0);
            fm.de[i] = rng.gen_range(0.0..2.0);
        }
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if j > i {
                fm.udf[i] += 1.0;
                fm.utf[j] += 1.0;
            } else {
                fm.udb[i] += 1.0;
                fm.utb[j] += 1.0;
            }
        }
        fm
    }

    #[test]
    fn y_index_is_dense_upper_triangle() {
        let terms = BlockTerms::from_fm(&FrequencyModel::new(5), &CostConstants::paper());
        let m = BipModel::from_terms(&terms);
        let mut seen = std::collections::HashSet::new();
        for i in 0..5 {
            for j in i..5 {
                assert!(seen.insert(m.y_index(i, j)), "collision at ({i},{j})");
            }
        }
        assert_eq!(seen.len(), 15);
        assert_eq!(*seen.iter().max().unwrap(), 14);
    }

    #[test]
    fn model_sizes_match_formulation() {
        let terms = BlockTerms::from_fm(&FrequencyModel::new(8), &CostConstants::paper());
        let m = BipModel::from_terms(&terms);
        assert_eq!(m.num_variables(), 8 + 36);
        // 1 pin + 8 equalities + 28 ≤ + 36 ≥.
        assert_eq!(m.num_constraints(), 1 + 8 + 28 + 36);
    }

    #[test]
    fn linearized_objective_equals_literal_eq16() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(11);
        for seed in 0..40 {
            let n = 2 + (seed as usize % 9);
            let fm = random_fm(n, seed);
            let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
            let model = BipModel::from_terms(&terms);
            let mut p: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            p[n - 1] = true;
            let lin = model.objective_of_boundaries(&p);
            let lit = cost_of_boundaries(&p, &terms);
            assert!(
                (lin - lit).abs() < 1e-6 * (1.0 + lit.abs()),
                "seed {seed}: linearized {lin} vs literal {lit} for {p:?}"
            );
        }
    }

    #[test]
    fn bnb_matches_exhaustive() {
        for seed in 0..20 {
            let n = 3 + (seed as usize % 8);
            let fm = random_fm(n, seed + 500);
            let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
            let (sol, _) = solve(&terms, &SolverConstraints::none());
            let ex = exhaustive::solve(&terms, &SolverConstraints::none());
            assert!(
                (sol.cost - ex.cost).abs() < 1e-6 * (1.0 + ex.cost.abs()),
                "seed {seed}: bnb {} vs exhaustive {}",
                sol.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn bnb_matches_exhaustive_constrained() {
        for seed in 0..15 {
            let n = 5 + (seed as usize % 6);
            let fm = random_fm(n, seed + 900);
            let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
            let constraints = SolverConstraints {
                max_partitions: Some(3),
                max_partition_blocks: Some(4),
            };
            if !constraints.feasible(n) {
                continue;
            }
            let (sol, _) = solve(&terms, &constraints);
            let ex = exhaustive::solve(&terms, &constraints);
            assert!(constraints.admits(&sol.seg));
            assert!(
                (sol.cost - ex.cost).abs() < 1e-6 * (1.0 + ex.cost.abs()),
                "seed {seed}: bnb {} vs exhaustive {}",
                sol.cost,
                ex.cost
            );
        }
    }

    #[test]
    fn pruning_actually_happens() {
        let fm = random_fm(12, 77);
        let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
        let (_, stats) = solve(&terms, &SolverConstraints::none());
        assert!(stats.pruned > 0, "expected bound to prune: {stats:?}");
        assert!(stats.nodes < 1 << 12, "search should beat enumeration");
    }
}
