//! Mapping latency SLAs to structural constraints (Eq. 21).
//!
//! * **Update/insert SLA**: the most expensive insert ripples through all
//!   partitions, costing `(RR + RW)·(1 + Σ p_i)`, so
//!   `Σ p_i ≤ updateSLA/(RR+RW) − 1` caps the partition count.
//! * **Read SLA**: a point query costs `RR + SR·MPS` for a partition of
//!   `MPS` blocks, so `MPS = (readSLA − RR)/SR − 1` caps the partition
//!   width; the paper enforces it with sliding-window constraints
//!   `Σ_{i=j}^{j+MPS−1} p_i ≥ 1`, which is equivalent to the DP's
//!   segment-length cap.

use super::SolverConstraints;
use crate::cost::CostConstants;

/// Maximum partition count allowed by an update SLA (ns), per Eq. 21.
/// Clamped to at least 1.
pub fn max_partitions_for_update_sla(c: &CostConstants, update_sla_ns: f64) -> usize {
    let k = (update_sla_ns / (c.rr + c.rw) - 1.0).floor();
    if k < 1.0 {
        1
    } else {
        k as usize
    }
}

/// Maximum partition width in blocks (`MPS`) allowed by a read SLA (ns),
/// per Eq. 21. Clamped to at least 1.
pub fn max_partition_blocks_for_read_sla(c: &CostConstants, read_sla_ns: f64) -> usize {
    let w = ((read_sla_ns - c.rr) / c.sr - 1.0).floor();
    if w < 1.0 {
        1
    } else {
        w as usize
    }
}

/// Bundle both SLA families into [`SolverConstraints`].
pub fn constraints_from_slas(
    c: &CostConstants,
    update_sla_ns: Option<f64>,
    read_sla_ns: Option<f64>,
) -> SolverConstraints {
    SolverConstraints {
        max_partitions: update_sla_ns.map(|s| max_partitions_for_update_sla(c, s)),
        max_partition_blocks: read_sla_ns.map(|s| max_partition_blocks_for_read_sla(c, s)),
    }
}

/// The worst-case insert latency (ns) implied by a partition count — the
/// inverse of [`max_partitions_for_update_sla`], used to report achieved
/// bounds in the Fig. 15 experiment.
pub fn worst_insert_nanos(c: &CostConstants, partitions: usize) -> f64 {
    (c.rr + c.rw) * (1.0 + partitions as f64)
}

/// The worst-case point-query latency (ns) implied by a maximum partition
/// width in blocks.
pub fn worst_point_query_nanos(c: &CostConstants, mps_blocks: usize) -> f64 {
    c.rr + c.sr * mps_blocks as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_sla_caps_partitions() {
        let c = CostConstants::new(100.0, 100.0, 10.0, 10.0);
        // SLA 1000ns / (200ns per partition step) − 1 = 4.
        assert_eq!(max_partitions_for_update_sla(&c, 1000.0), 4);
        // Tight SLA clamps to one partition.
        assert_eq!(max_partitions_for_update_sla(&c, 100.0), 1);
    }

    #[test]
    fn read_sla_caps_partition_width() {
        let c = CostConstants::new(100.0, 100.0, 10.0, 10.0);
        // (600 − 100)/10 − 1 = 49 blocks.
        assert_eq!(max_partition_blocks_for_read_sla(&c, 600.0), 49);
        assert_eq!(max_partition_blocks_for_read_sla(&c, 50.0), 1);
    }

    #[test]
    fn sla_round_trip_within_bounds() {
        let c = CostConstants::paper();
        for sla in [500.0, 1000.0, 5000.0, 12_500.0] {
            let k = max_partitions_for_update_sla(&c, sla);
            assert!(
                worst_insert_nanos(&c, k) <= sla,
                "k={k} violates its own SLA {sla}"
            );
            // One more partition would break the SLA (unless clamped).
            if k > 1 {
                assert!(worst_insert_nanos(&c, k + 1) > sla);
            }
        }
    }

    #[test]
    fn bundle_builds_constraints() {
        let c = CostConstants::paper();
        let sc = constraints_from_slas(&c, Some(2000.0), Some(800.0));
        assert!(sc.max_partitions.is_some());
        assert!(sc.max_partition_blocks.is_some());
        let none = constraints_from_slas(&c, None, None);
        assert_eq!(none, SolverConstraints::none());
    }
}
