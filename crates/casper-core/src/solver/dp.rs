//! Exact segmentation dynamic program — the workhorse solver.
//!
//! ## Why a DP solves the paper's BIP exactly
//!
//! For a block `i` inside partition `[a, b]`, the Eq. 2/4 quantities
//! collapse to `bck_read(i) = i − a` and `fwd_read(i) = b − i`, so their
//! cost contributions are *local to the partition*. The remaining term
//! rewrites per boundary:
//!
//! ```text
//! Σ_i parts_i · trail_parts(i) = Σ_i parts_i · Σ_{j≥i} p_j
//!                              = Σ_{j: p_j=1} Σ_{i≤j} parts_i
//!                              = Σ_{partition ends b} PP(b+1)
//! ```
//!
//! where `PP` is the prefix sum of `parts`. Eq. 16 is therefore a sum of
//! independent per-partition costs `w(a, b)`, and minimizing it over all
//! boundary vectors with `p_{N−1} = 1` is the classic optimal-segmentation
//! problem: `O(N²)` time, `O(N)` space with prefix sums. The Eq. 21 SLA
//! bounds map to a cap on the number of segments (extra DP dimension) and a
//! cap on segment length (restricted inner loop).
//!
//! Correctness (DP optimum == literal Eq. 16 optimum == BIP optimum) is
//! property-tested against [`super::exhaustive`] and [`super::bip`].

use super::{Solution, SolverConstraints};
use crate::cost::BlockTerms;
use crate::layout::Segmentation;

/// Precomputed prefix sums enabling `O(1)` per-segment cost evaluation.
#[derive(Debug, Clone)]
pub struct SegmentCosts {
    /// Σ fixed.
    f: Vec<f64>,
    /// Σ bck.
    bw: Vec<f64>,
    /// Σ i·bck.
    bwi: Vec<f64>,
    /// Σ fwd.
    fw: Vec<f64>,
    /// Σ i·fwd.
    fwi: Vec<f64>,
    /// Σ parts.
    pp: Vec<f64>,
}

impl SegmentCosts {
    /// Build from per-block terms.
    pub fn new(terms: &BlockTerms) -> Self {
        let n = terms.n_blocks();
        let mut f = Vec::with_capacity(n + 1);
        let mut bw = Vec::with_capacity(n + 1);
        let mut bwi = Vec::with_capacity(n + 1);
        let mut fw = Vec::with_capacity(n + 1);
        let mut fwi = Vec::with_capacity(n + 1);
        let mut pp = Vec::with_capacity(n + 1);
        f.push(0.0);
        bw.push(0.0);
        bwi.push(0.0);
        fw.push(0.0);
        fwi.push(0.0);
        pp.push(0.0);
        for i in 0..n {
            f.push(f[i] + terms.fixed[i]);
            bw.push(bw[i] + terms.bck[i]);
            bwi.push(bwi[i] + terms.bck[i] * i as f64);
            fw.push(fw[i] + terms.fwd[i]);
            fwi.push(fwi[i] + terms.fwd[i] * i as f64);
            pp.push(pp[i] + terms.parts[i]);
        }
        Self {
            f,
            bw,
            bwi,
            fw,
            fwi,
            pp,
        }
    }

    /// Number of blocks covered.
    pub fn n_blocks(&self) -> usize {
        self.f.len() - 1
    }

    /// Cost `w(a, b)` of one partition spanning blocks `[a, b]` inclusive
    /// (including its boundary's `trail_parts` contribution `PP(b+1)`).
    #[inline]
    pub fn segment_cost(&self, a: usize, b: usize) -> f64 {
        debug_assert!(a <= b && b < self.n_blocks());
        let fixed = self.f[b + 1] - self.f[a];
        let bck = (self.bwi[b + 1] - self.bwi[a]) - a as f64 * (self.bw[b + 1] - self.bw[a]);
        let fwd = b as f64 * (self.fw[b + 1] - self.fw[a]) - (self.fwi[b + 1] - self.fwi[a]);
        fixed + bck + fwd + self.pp[b + 1]
    }
}

/// Exact optimal segmentation under the given constraints.
///
/// Unconstrained (or length-capped): `O(N · min(N, MPS))`. With a
/// partition-count cap `K`: `O(N · min(N, MPS) · K)`.
///
/// # Panics
/// Panics when the constraints are infeasible for this block count
/// (`max_partitions · max_partition_blocks < N`), mirroring a solver
/// infeasibility result.
pub fn solve(terms: &BlockTerms, constraints: &SolverConstraints) -> Solution {
    let costs = SegmentCosts::new(terms);
    solve_with_costs(&costs, constraints)
}

/// As [`solve`], reusing precomputed prefix sums.
pub fn solve_with_costs(costs: &SegmentCosts, constraints: &SolverConstraints) -> Solution {
    super::telemetry::note_solve();
    let n = costs.n_blocks();
    assert!(n > 0, "no blocks to partition");
    assert!(
        constraints.feasible(n),
        "infeasible constraints for {n} blocks: {constraints:?}"
    );
    let mps = constraints.max_partition_blocks.unwrap_or(n).min(n).max(1);
    match constraints.max_partitions {
        None => solve_unbounded(costs, mps),
        Some(k) if k >= n => solve_unbounded(costs, mps),
        Some(k) => solve_bounded(costs, mps, k),
    }
}

fn solve_unbounded(costs: &SegmentCosts, mps: usize) -> Solution {
    let n = costs.n_blocks();
    // best[e] = optimal cost of segmenting blocks [0, e); parent[e] = start
    // of the last segment in that optimum.
    let mut best = vec![f64::INFINITY; n + 1];
    let mut parent = vec![0usize; n + 1];
    best[0] = 0.0;
    for e in 1..=n {
        let lo = e.saturating_sub(mps);
        for s in lo..e {
            let c = best[s] + costs.segment_cost(s, e - 1);
            if c < best[e] {
                best[e] = c;
                parent[e] = s;
            }
        }
    }
    let mut ends = Vec::new();
    let mut e = n;
    while e > 0 {
        ends.push(e);
        e = parent[e];
    }
    ends.reverse();
    Solution {
        seg: Segmentation::new(ends),
        cost: best[n],
    }
}

fn solve_bounded(costs: &SegmentCosts, mps: usize, k_cap: usize) -> Solution {
    let n = costs.n_blocks();
    let k_cap = k_cap.min(n);
    // best[k][e]: optimal cost of segmenting [0, e) into exactly k parts.
    let mut best = vec![vec![f64::INFINITY; n + 1]; k_cap + 1];
    let mut parent = vec![vec![0usize; n + 1]; k_cap + 1];
    best[0][0] = 0.0;
    for k in 1..=k_cap {
        for e in k..=n {
            let lo = e.saturating_sub(mps);
            for s in lo..e {
                if best[k - 1][s].is_finite() {
                    let c = best[k - 1][s] + costs.segment_cost(s, e - 1);
                    if c < best[k][e] {
                        best[k][e] = c;
                        parent[k][e] = s;
                    }
                }
            }
        }
    }
    // Any partition count up to the cap is admissible; take the best.
    let (k_best, &cost) = best
        .iter()
        .enumerate()
        .skip(1)
        .map(|(k, row)| (k, &row[n]))
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite costs"))
        .expect("at least one k");
    assert!(
        cost.is_finite(),
        "constraints infeasible despite feasibility pre-check"
    );
    let mut ends = Vec::new();
    let mut e = n;
    let mut k = k_best;
    while e > 0 {
        ends.push(e);
        e = parent[k][e];
        k -= 1;
    }
    ends.reverse();
    Solution {
        seg: Segmentation::new(ends),
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{cost_of_segmentation, CostConstants};
    use crate::fm::FrequencyModel;

    fn terms_for(fm: &FrequencyModel) -> BlockTerms {
        BlockTerms::from_fm(fm, &CostConstants::paper())
    }

    #[test]
    fn pure_point_queries_want_singleton_partitions() {
        let mut fm = FrequencyModel::new(8);
        fm.pq = vec![10.0; 8];
        let sol = solve(&terms_for(&fm), &SolverConstraints::none());
        assert_eq!(sol.seg.partition_count(), 8, "{}", sol.seg);
    }

    #[test]
    fn pure_inserts_want_single_partition() {
        let mut fm = FrequencyModel::new(8);
        fm.ins = vec![10.0; 8];
        let sol = solve(&terms_for(&fm), &SolverConstraints::none());
        assert_eq!(sol.seg.partition_count(), 1, "{}", sol.seg);
    }

    #[test]
    fn mixed_workload_splits_hot_read_region() {
        // Reads hammer blocks 0-3, inserts hammer blocks 12-15: the read
        // region should be finely partitioned, the insert region coarse.
        let mut fm = FrequencyModel::new(16);
        for i in 0..4 {
            fm.pq[i] = 50.0;
        }
        for i in 12..16 {
            fm.ins[i] = 50.0;
        }
        let sol = solve(&terms_for(&fm), &SolverConstraints::none());
        let sizes = sol.seg.sizes();
        // First partitions (read region) must be narrower than the last
        // (insert region).
        assert!(
            sizes[0] <= 2,
            "hot read region coarser than expected: {}",
            sol.seg
        );
        assert!(
            *sizes.last().unwrap() >= 4,
            "insert region finer than expected: {}",
            sol.seg
        );
    }

    #[test]
    fn solution_cost_matches_model_evaluation() {
        let mut fm = FrequencyModel::new(12);
        fm.pq = (0..12).map(|i| i as f64).collect();
        fm.ins = (0..12).map(|i| (11 - i) as f64).collect();
        fm.rs[3] = 5.0;
        fm.sc[4] = 5.0;
        fm.re[5] = 5.0;
        let terms = terms_for(&fm);
        let sol = solve(&terms, &SolverConstraints::none());
        let eval = cost_of_segmentation(&sol.seg, &terms);
        assert!((sol.cost - eval).abs() < 1e-6 * (1.0 + eval.abs()));
    }

    #[test]
    fn max_partition_blocks_is_respected() {
        let mut fm = FrequencyModel::new(10);
        fm.ins = vec![10.0; 10]; // wants one big partition
        let sol = solve(
            &terms_for(&fm),
            &SolverConstraints {
                max_partitions: None,
                max_partition_blocks: Some(3),
            },
        );
        assert!(sol.seg.max_partition_blocks() <= 3, "{}", sol.seg);
        assert!(sol.seg.partition_count() >= 4);
    }

    #[test]
    fn max_partitions_is_respected() {
        let mut fm = FrequencyModel::new(10);
        fm.pq = vec![10.0; 10]; // wants 10 partitions
        let sol = solve(
            &terms_for(&fm),
            &SolverConstraints {
                max_partitions: Some(3),
                max_partition_blocks: None,
            },
        );
        assert!(sol.seg.partition_count() <= 3, "{}", sol.seg);
    }

    #[test]
    fn bounded_equals_unbounded_when_cap_not_binding() {
        let mut fm = FrequencyModel::new(9);
        fm.pq = vec![1.0, 0.0, 3.0, 0.0, 0.0, 2.0, 1.0, 0.0, 4.0];
        fm.ins = vec![0.5; 9];
        let terms = terms_for(&fm);
        let free = solve(&terms, &SolverConstraints::none());
        let capped = solve(
            &terms,
            &SolverConstraints {
                max_partitions: Some(9),
                max_partition_blocks: None,
            },
        );
        assert!((free.cost - capped.cost).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_constraints_panic() {
        let fm = FrequencyModel::new(10);
        let _ = solve(
            &terms_for(&fm),
            &SolverConstraints {
                max_partitions: Some(2),
                max_partition_blocks: Some(3),
            },
        );
    }

    #[test]
    fn single_block_chunk() {
        let mut fm = FrequencyModel::new(1);
        fm.pq[0] = 5.0;
        let sol = solve(&terms_for(&fm), &SolverConstraints::none());
        assert_eq!(sol.seg.partition_count(), 1);
        assert_eq!(sol.seg.n_blocks(), 1);
    }

    #[test]
    fn segment_cost_prefix_sums_match_direct_sum() {
        let mut fm = FrequencyModel::new(6);
        fm.pq = vec![1.0, 2.0, 0.0, 4.0, 1.0, 3.0];
        fm.ins = vec![0.0, 1.0, 2.0, 0.0, 1.0, 0.0];
        fm.de = vec![1.0; 6];
        let terms = terms_for(&fm);
        let costs = SegmentCosts::new(&terms);
        for a in 0..6 {
            for b in a..6 {
                let mut direct = 0.0;
                for i in a..=b {
                    direct += terms.fixed[i]
                        + terms.bck[i] * (i - a) as f64
                        + terms.fwd[i] * (b - i) as f64;
                }
                direct += terms.parts[..=b].iter().sum::<f64>();
                let fast = costs.segment_cost(a, b);
                assert!(
                    (direct - fast).abs() < 1e-9 * (1.0 + direct.abs()),
                    "a={a} b={b}: {direct} vs {fast}"
                );
            }
        }
    }
}
