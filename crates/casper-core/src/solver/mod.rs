//! Finding the optimal column layout (§5).
//!
//! The paper formulates layout selection as a binary integer program over
//! the boundary variables `p_i` (Eq. 19), linearizes the products with
//! auxiliary `y_{i,j}` variables (Eq. 20), adds SLA bounds (Eq. 21), and
//! solves with the commercial Mosek solver.
//!
//! This reproduction replaces Mosek with three cross-validated solvers
//! (see DESIGN.md §2 for the substitution argument):
//!
//! * [`dp`] — an exact `O(N²)` segmentation dynamic program. Because
//!   Eq. 16 decomposes additively over partitions, the DP optimum *is* the
//!   BIP optimum; both SLA families map directly to DP constraints.
//! * [`bip`] — the literal Eq. 20 model (variables, constraints, objective)
//!   plus a branch-and-bound solver with an admissible suffix-DP bound.
//! * [`exhaustive`] — brute-force enumeration for small `N`, the ground
//!   truth in tests.

pub mod bip;
pub mod dp;
pub mod exhaustive;
pub mod sla;

/// Per-thread solver-invocation instrumentation.
///
/// Every [`dp::solve`] call — the production solver behind
/// [`LayoutOptimizer::optimize`] — bumps a thread-local counter, mirroring
/// the codec decode/encode counters in `casper_storage::compress`. The
/// durability tests use it to *prove* that restoring a snapshot performs
/// zero layout solves: the optimized partitioning comes back from disk, not
/// from re-running the optimizer.
pub mod telemetry {
    use std::cell::Cell;

    thread_local! {
        static SOLVES: Cell<u64> = const { Cell::new(0) };
    }

    /// Record one solver invocation (called by [`super::dp::solve`]).
    pub(crate) fn note_solve() {
        SOLVES.with(|c| c.set(c.get() + 1));
    }

    /// Number of layout solves performed by the current thread.
    pub fn solve_count() -> u64 {
        SOLVES.with(Cell::get)
    }
}

use crate::cost::{BlockTerms, CostConstants};
use crate::fm::FrequencyModel;
use crate::ghost_alloc::allocate_ghosts;
use crate::layout::Segmentation;
use casper_storage::ghost::GhostPlan;

/// Constraints on admissible partitionings (the Eq. 21 bounds, expressed
/// structurally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverConstraints {
    /// Maximum number of partitions (from an update/insert SLA).
    pub max_partitions: Option<usize>,
    /// Maximum partition width in blocks (`MPS`, from a read SLA).
    pub max_partition_blocks: Option<usize>,
}

impl SolverConstraints {
    /// No constraints.
    pub fn none() -> Self {
        Self::default()
    }

    /// Whether a segmentation satisfies the constraints.
    pub fn admits(&self, seg: &Segmentation) -> bool {
        self.max_partitions
            .is_none_or(|k| seg.partition_count() <= k)
            && self
                .max_partition_blocks
                .is_none_or(|w| seg.max_partition_blocks() <= w)
    }

    /// Whether any segmentation of `n` blocks can satisfy the constraints
    /// (`max_partitions · MPS ≥ N`).
    pub fn feasible(&self, n_blocks: usize) -> bool {
        let k = self.max_partitions.unwrap_or(n_blocks).max(1);
        let w = self.max_partition_blocks.unwrap_or(n_blocks).max(1);
        k.saturating_mul(w) >= n_blocks
    }
}

/// An optimal (or best-found) layout with its modeled cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The chosen partitioning.
    pub seg: Segmentation,
    /// Modeled workload cost (Eq. 16) in nanoseconds.
    pub cost: f64,
}

/// End-to-end optimizer: Frequency Model in, partitioning + ghost plan out
/// (the "B" box of Fig. 10).
#[derive(Debug, Clone)]
pub struct LayoutOptimizer {
    /// Cost constants used for Eq. 17.
    pub constants: CostConstants,
    /// SLA-derived structural constraints.
    pub constraints: SolverConstraints,
}

/// A complete per-chunk layout decision.
#[derive(Debug, Clone)]
pub struct LayoutDecision {
    /// The partitioning.
    pub seg: Segmentation,
    /// Ghost slots per partition (Eq. 18).
    pub ghosts: GhostPlan,
    /// Modeled workload cost of the chosen layout.
    pub est_cost: f64,
}

impl LayoutOptimizer {
    /// Optimizer with the given constants and no constraints.
    pub fn new(constants: CostConstants) -> Self {
        Self {
            constants,
            constraints: SolverConstraints::none(),
        }
    }

    /// Attach constraints (builder style).
    pub fn with_constraints(mut self, constraints: SolverConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Derive constraints from latency SLAs (Eq. 21).
    pub fn with_slas(mut self, update_sla_ns: Option<f64>, read_sla_ns: Option<f64>) -> Self {
        self.constraints = sla::constraints_from_slas(&self.constants, update_sla_ns, read_sla_ns);
        self
    }

    /// Compute the optimal layout for a Frequency Model and a total ghost
    /// budget (in slots).
    pub fn optimize(&self, fm: &FrequencyModel, ghost_budget: usize) -> LayoutDecision {
        let terms = BlockTerms::from_fm(fm, &self.constants);
        let sol = dp::solve(&terms, &self.constraints);
        let ghosts = allocate_ghosts(fm, &sol.seg, ghost_budget);
        LayoutDecision {
            est_cost: sol.cost,
            seg: sol.seg,
            ghosts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fm::FrequencyModel;

    #[test]
    fn constraints_admit() {
        let c = SolverConstraints {
            max_partitions: Some(2),
            max_partition_blocks: Some(3),
        };
        assert!(c.admits(&Segmentation::new(vec![3, 6])));
        assert!(!c.admits(&Segmentation::new(vec![1, 2, 6]))); // 3 partitions
        assert!(!c.admits(&Segmentation::new(vec![4, 6]))); // width 4
        assert!(SolverConstraints::none().admits(&Segmentation::single(100)));
    }

    #[test]
    fn feasibility_check() {
        let c = SolverConstraints {
            max_partitions: Some(2),
            max_partition_blocks: Some(3),
        };
        assert!(c.feasible(6));
        assert!(!c.feasible(7));
        assert!(SolverConstraints::none().feasible(1_000_000));
    }

    #[test]
    fn optimizer_end_to_end() {
        let mut fm = FrequencyModel::new(8);
        fm.pq = vec![5.0; 8];
        fm.ins[0] = 3.0;
        let opt = LayoutOptimizer::new(CostConstants::paper());
        let d = opt.optimize(&fm, 16);
        assert_eq!(d.seg.n_blocks(), 8);
        assert_eq!(d.ghosts.total(), 16);
        assert_eq!(d.ghosts.partitions(), d.seg.partition_count());
        assert!(d.est_cost > 0.0);
    }

    #[test]
    fn optimizer_respects_constraints() {
        let mut fm = FrequencyModel::new(10);
        fm.pq = vec![10.0; 10];
        let opt =
            LayoutOptimizer::new(CostConstants::paper()).with_constraints(SolverConstraints {
                max_partitions: Some(3),
                max_partition_blocks: None,
            });
        let d = opt.optimize(&fm, 0);
        assert!(d.seg.partition_count() <= 3);
    }
}
