//! Exhaustive enumeration over all `2^(N−1)` boundary vectors — the ground
//! truth that the DP and branch-and-bound solvers are validated against.
//!
//! The solution space matches §6.3's observation ("an exponential (2^N)
//! solution space"); with `p_{N−1}` pinned to 1 there are `2^(N−1)` free
//! assignments. Practical only for small `N` (capped at 22 bits).

use super::{Solution, SolverConstraints};
use crate::cost::{cost_of_segmentation, BlockTerms};
use crate::layout::Segmentation;

/// Largest `N` the exhaustive solver accepts.
pub const MAX_BLOCKS: usize = 22;

/// Enumerate every admissible boundary vector and return the cheapest.
///
/// # Panics
/// Panics when `N > MAX_BLOCKS` or no admissible layout exists.
pub fn solve(terms: &BlockTerms, constraints: &SolverConstraints) -> Solution {
    let n = terms.n_blocks();
    assert!(
        (1..=MAX_BLOCKS).contains(&n),
        "exhaustive solver capped at {MAX_BLOCKS} blocks"
    );
    let mut best: Option<Solution> = None;
    for mask in 0u32..(1u32 << (n - 1)) {
        let mut p: Vec<bool> = (0..n - 1).map(|i| mask & (1 << i) != 0).collect();
        p.push(true);
        let seg = Segmentation::from_boundaries(&p);
        if !constraints.admits(&seg) {
            continue;
        }
        let cost = cost_of_segmentation(&seg, terms);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Solution { seg, cost });
        }
    }
    best.expect("no admissible layout — infeasible constraints")
}

/// Count the admissible layouts (used to report search-space sizes).
pub fn admissible_count(n: usize, constraints: &SolverConstraints) -> u64 {
    assert!((1..=MAX_BLOCKS).contains(&n));
    let mut count = 0u64;
    for mask in 0u32..(1u32 << (n - 1)) {
        let mut p: Vec<bool> = (0..n - 1).map(|i| mask & (1 << i) != 0).collect();
        p.push(true);
        let seg = Segmentation::from_boundaries(&p);
        if constraints.admits(&seg) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostConstants;
    use crate::fm::FrequencyModel;
    use crate::solver::dp;

    fn random_fm(n: usize, seed: u64) -> FrequencyModel {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fm = FrequencyModel::new(n);
        for i in 0..n {
            fm.pq[i] = rng.gen_range(0.0..10.0);
            fm.de[i] = rng.gen_range(0.0..3.0);
            fm.ins[i] = rng.gen_range(0.0..5.0);
        }
        for _ in 0..2 * n {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if j > i {
                fm.udf[i] += 1.0;
                fm.utf[j] += 1.0;
            } else {
                fm.udb[i] += 1.0;
                fm.utb[j] += 1.0;
            }
        }
        // Some ranges.
        for _ in 0..n {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(a..n);
            fm.rs[a] += 1.0;
            if b > a {
                for s in a + 1..b {
                    fm.sc[s] += 1.0;
                }
                fm.re[b] += 1.0;
            }
        }
        fm
    }

    #[test]
    fn dp_matches_exhaustive_unconstrained() {
        for seed in 0..30 {
            let n = 2 + (seed as usize % 10);
            let fm = random_fm(n, seed);
            let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
            let ex = solve(&terms, &SolverConstraints::none());
            let dp_sol = dp::solve(&terms, &SolverConstraints::none());
            assert!(
                (ex.cost - dp_sol.cost).abs() < 1e-6 * (1.0 + ex.cost.abs()),
                "seed {seed}: exhaustive {} vs dp {}",
                ex.cost,
                dp_sol.cost
            );
        }
    }

    #[test]
    fn dp_matches_exhaustive_with_constraints() {
        for seed in 100..120 {
            let n = 4 + (seed as usize % 8);
            let fm = random_fm(n, seed);
            let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
            let constraints = SolverConstraints {
                max_partitions: Some(2 + seed as usize % 3),
                max_partition_blocks: Some(3 + seed as usize % 4),
            };
            if !constraints.feasible(n) {
                continue;
            }
            let ex = solve(&terms, &constraints);
            let dp_sol = dp::solve(&terms, &constraints);
            assert!(constraints.admits(&dp_sol.seg));
            assert!(
                (ex.cost - dp_sol.cost).abs() < 1e-6 * (1.0 + ex.cost.abs()),
                "seed {seed}: exhaustive {} vs dp {} ({} vs {})",
                ex.cost,
                dp_sol.cost,
                ex.seg,
                dp_sol.seg
            );
        }
    }

    #[test]
    fn admissible_count_unconstrained_is_power_of_two() {
        assert_eq!(admissible_count(5, &SolverConstraints::none()), 16);
        assert_eq!(admissible_count(1, &SolverConstraints::none()), 1);
    }

    #[test]
    fn admissible_count_with_mps() {
        // N=3, MPS=1: only the all-boundaries vector.
        let c = SolverConstraints {
            max_partitions: None,
            max_partition_blocks: Some(1),
        };
        assert_eq!(admissible_count(3, &c), 1);
    }
}
