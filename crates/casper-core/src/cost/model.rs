//! The partitioning-dependent cost functions (Eq. 2–16).
//!
//! Two equivalent evaluators are provided:
//!
//! * **literal** — `bck_read`/`fwd_read` computed exactly as the paper's
//!   sum-of-products over the boundary bits (Eq. 2/4), `O(N)` per block.
//!   Used as ground truth in tests.
//! * **closed-form** — for a block `i` inside partition `[a, b]`:
//!   `bck_read(i) = i − a`, `fwd_read(i) = b − i`, and `trail_parts(i)` is
//!   the number of partitions from `i`'s onwards. `O(N)` for the whole
//!   chunk; this is what the solver and the engine use.
//!
//! Their equality on random inputs is property-tested, which validates the
//! algebraic rewrite that makes the exact DP solver possible (DESIGN.md §2).

use super::terms::BlockTerms;
use crate::layout::Segmentation;

/// `bck_read(i)` per Eq. 2: Σ_{j=0}^{i−1} Π_{k=j}^{i−1} (1 − p_k).
pub fn bck_read_literal(p: &[bool], i: usize) -> f64 {
    let mut total = 0.0;
    for j in 0..i {
        let mut prod = 1.0;
        for &pk in &p[j..i] {
            prod *= 1.0 - f64::from(u8::from(pk));
        }
        total += prod;
    }
    total
}

/// `fwd_read(i)` per Eq. 4: Σ_{j=0}^{N−i−1} Π_{k=i}^{N−j−1} (1 − p_k).
///
/// Each addend is 1 exactly when no boundary lies in `[i, N−j−1]`; summing
/// over `j` counts the blocks after `i` in the same partition.
pub fn fwd_read_literal(p: &[bool], i: usize) -> f64 {
    let n = p.len();
    let mut total = 0.0;
    for j in 0..n - i {
        let hi = n - j - 1; // inclusive upper index of the product
        if hi < i {
            continue;
        }
        let mut prod = 1.0;
        for &pk in &p[i..=hi] {
            prod *= 1.0 - f64::from(u8::from(pk));
        }
        total += prod;
    }
    total
}

/// `trail_parts(i)` per Eq. 8: Σ_{j=i}^{N−1} p_j.
pub fn trail_parts(p: &[bool], i: usize) -> f64 {
    p[i..].iter().map(|&b| f64::from(u8::from(b))).sum()
}

/// Closed form of `bck_read(i)`: distance from `i` to the start of its
/// partition.
pub fn bck_read_closed(seg: &Segmentation, i: usize) -> f64 {
    (i - seg.partition_start(i)) as f64
}

/// Closed form of `fwd_read(i)`: distance from `i` to the end of its
/// partition.
pub fn fwd_read_closed(seg: &Segmentation, i: usize) -> f64 {
    (seg.partition_end(i) - 1 - i) as f64
}

/// Per-operation-class cost decomposition of a layout (useful for Fig. 2
/// style analyses and debugging).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpCostBreakdown {
    /// Partition-independent cost.
    pub fixed: f64,
    /// Cost of leading unnecessary reads (`bck_term · bck_read`).
    pub bck: f64,
    /// Cost of trailing unnecessary reads (`fwd_term · fwd_read`).
    pub fwd: f64,
    /// Ripple cost (`parts_term · trail_parts`).
    pub parts: f64,
}

impl OpCostBreakdown {
    /// Total cost.
    pub fn total(&self) -> f64 {
        self.fixed + self.bck + self.fwd + self.parts
    }
}

/// Total workload cost (Eq. 16) of a boundary vector, evaluated with the
/// *literal* Eq. 2/4/8 definitions. `O(N³)` — test/reference use only.
pub fn cost_of_boundaries(p: &[bool], terms: &BlockTerms) -> f64 {
    assert_eq!(p.len(), terms.n_blocks());
    assert!(p.last().copied().unwrap_or(false), "p_{{N-1}} must be 1");
    let mut total = 0.0;
    for i in 0..p.len() {
        total += terms.fixed[i]
            + terms.bck[i] * bck_read_literal(p, i)
            + terms.fwd[i] * fwd_read_literal(p, i)
            + terms.parts[i] * trail_parts(p, i);
    }
    total
}

/// Total workload cost (Eq. 16) of a segmentation, evaluated with the
/// closed forms — `O(N)`.
pub fn cost_of_segmentation(seg: &Segmentation, terms: &BlockTerms) -> f64 {
    cost_breakdown(seg, terms).total()
}

/// As [`cost_of_segmentation`], broken down by term class.
pub fn cost_breakdown(seg: &Segmentation, terms: &BlockTerms) -> OpCostBreakdown {
    assert_eq!(seg.n_blocks(), terms.n_blocks());
    let mut out = OpCostBreakdown::default();
    let k = seg.partition_count();
    for (rank, range) in seg.ranges().enumerate() {
        let trail = (k - rank) as f64;
        for i in range.clone() {
            out.fixed += terms.fixed[i];
            out.bck += terms.bck[i] * (i - range.start) as f64;
            out.fwd += terms.fwd[i] * (range.end - 1 - i) as f64;
            out.parts += terms.parts[i] * trail;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostConstants;
    use crate::fm::FrequencyModel;

    fn p(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|&b| b != 0).collect()
    }

    #[test]
    fn bck_read_counts_leading_blocks_in_partition() {
        // Partitions: [0..3), [3..5) → boundaries at 2 and 4.
        let bounds = p(&[0, 0, 1, 0, 1]);
        assert_eq!(bck_read_literal(&bounds, 0), 0.0);
        assert_eq!(bck_read_literal(&bounds, 1), 1.0);
        assert_eq!(bck_read_literal(&bounds, 2), 2.0);
        assert_eq!(bck_read_literal(&bounds, 3), 0.0);
        assert_eq!(bck_read_literal(&bounds, 4), 1.0);
    }

    #[test]
    fn fwd_read_counts_trailing_blocks_in_partition() {
        let bounds = p(&[0, 0, 1, 0, 1]);
        assert_eq!(fwd_read_literal(&bounds, 0), 2.0);
        assert_eq!(fwd_read_literal(&bounds, 1), 1.0);
        assert_eq!(fwd_read_literal(&bounds, 2), 0.0);
        assert_eq!(fwd_read_literal(&bounds, 3), 1.0);
        assert_eq!(fwd_read_literal(&bounds, 4), 0.0);
    }

    #[test]
    fn trail_parts_counts_boundaries_from_i() {
        let bounds = p(&[0, 1, 0, 1, 1]);
        assert_eq!(trail_parts(&bounds, 0), 3.0);
        assert_eq!(trail_parts(&bounds, 2), 2.0);
        assert_eq!(trail_parts(&bounds, 4), 1.0);
    }

    #[test]
    fn closed_forms_match_literal_on_example() {
        let bounds = p(&[0, 1, 0, 0, 1, 1, 0, 1]);
        let seg = Segmentation::from_boundaries(&bounds);
        for i in 0..bounds.len() {
            assert_eq!(
                bck_read_literal(&bounds, i),
                bck_read_closed(&seg, i),
                "bck at {i}"
            );
            assert_eq!(
                fwd_read_literal(&bounds, i),
                fwd_read_closed(&seg, i),
                "fwd at {i}"
            );
        }
    }

    #[test]
    fn paper_rs2_example() {
        // §4.4 worked example: cost of a range start in block 2 is
        // rs2·RR + rs2·SR·((1−p1) + (1−p1)(1−p0)).
        // With p0 = p1 = 0: bck_read(2) = 2; with p1 = 1: bck_read(2) = 0.
        let no_bounds = p(&[0, 0, 0, 1]);
        assert_eq!(bck_read_literal(&no_bounds, 2), 2.0);
        let with_bound = p(&[0, 1, 0, 1]);
        assert_eq!(bck_read_literal(&with_bound, 2), 0.0);
    }

    fn random_fm(n: usize, seed: u64) -> FrequencyModel {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fm = FrequencyModel::new(n);
        for i in 0..n {
            fm.pq[i] = rng.gen_range(0.0..5.0);
            fm.rs[i] = rng.gen_range(0.0..3.0);
            fm.sc[i] = rng.gen_range(0.0..3.0);
            fm.re[i] = rng.gen_range(0.0..3.0);
            fm.de[i] = rng.gen_range(0.0..2.0);
            fm.ins[i] = rng.gen_range(0.0..2.0);
        }
        // Balanced updates.
        for _ in 0..n {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if j > i {
                fm.udf[i] += 1.0;
                fm.utf[j] += 1.0;
            } else {
                fm.udb[i] += 1.0;
                fm.utb[j] += 1.0;
            }
        }
        fm
    }

    #[test]
    fn literal_and_closed_costs_agree_randomized() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for case in 0..50 {
            let n = rng.gen_range(1..12);
            let fm = random_fm(n, case);
            let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
            let mut bounds: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.4)).collect();
            bounds[n - 1] = true;
            let seg = Segmentation::from_boundaries(&bounds);
            let lit = cost_of_boundaries(&bounds, &terms);
            let closed = cost_of_segmentation(&seg, &terms);
            assert!(
                (lit - closed).abs() < 1e-6 * (1.0 + lit.abs()),
                "case {case}: literal {lit} vs closed {closed}"
            );
        }
    }

    #[test]
    fn more_partitions_cheaper_reads_dearer_inserts() {
        // The Fig. 2a intuition, checked through the model.
        let n = 16;
        let mut read_fm = FrequencyModel::new(n);
        read_fm.pq = vec![1.0; n];
        let mut write_fm = FrequencyModel::new(n);
        write_fm.ins = vec![1.0; n];
        let c = CostConstants::paper();
        let read_terms = BlockTerms::from_fm(&read_fm, &c);
        let write_terms = BlockTerms::from_fm(&write_fm, &c);
        let coarse = Segmentation::equi(n, 2);
        let fine = Segmentation::equi(n, 8);
        assert!(
            cost_of_segmentation(&fine, &read_terms) < cost_of_segmentation(&coarse, &read_terms),
            "reads favor more partitions"
        );
        assert!(
            cost_of_segmentation(&fine, &write_terms) > cost_of_segmentation(&coarse, &write_terms),
            "inserts favor fewer partitions"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let fm = random_fm(10, 3);
        let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
        let seg = Segmentation::equi(10, 3);
        let b = cost_breakdown(&seg, &terms);
        assert!((b.total() - cost_of_segmentation(&seg, &terms)).abs() < 1e-9);
        assert!(b.fixed > 0.0);
    }
}
