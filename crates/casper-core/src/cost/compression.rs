//! Storage-mode selection from the Frequency Model (§6.2).
//!
//! The paper's compression synergy only pays off where partitions are read
//! but not written: a scan over an encoded fragment moves fewer bytes, but
//! any write must first decode the fragment back to plain slots. This
//! module reduces the per-block FM histograms to per-partition read/write
//! pressure and advises which partitions are cold enough to compress —
//! the optimizer applies the advice right after a re-layout (Fig. 10 step
//! C), when every partition was just rebuilt and its fragment is cheapest
//! to produce.

use crate::fm::FrequencyModel;
use crate::layout::Segmentation;

/// Read/write pressure of one partition, aggregated from the FM histograms
/// over the partition's block range.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PartitionPressure {
    /// Read-side accesses: point queries plus range starts/scans/ends.
    pub reads: f64,
    /// Write-side accesses landing in the partition: inserts, deletes and
    /// both sides of updates. (Ripple pass-through traffic is charged to
    /// its endpoints; a pass-through invalidates a fragment just the same,
    /// so hot neighbourhoods de-compress themselves at run time.)
    pub writes: f64,
}

/// Per-partition compression advice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompressionAdvice {
    /// Write traffic expected: stay on plain slots.
    StayPlain,
    /// Cold and read-heavy (or entirely untouched): encode. The codec is
    /// picked by the engine from the partition's actual data (cardinality,
    /// value span).
    Compress,
}

/// Aggregate the FM histograms into per-partition read/write pressure for
/// the partitions of `seg`.
pub fn partition_pressure(fm: &FrequencyModel, seg: &Segmentation) -> Vec<PartitionPressure> {
    assert_eq!(
        fm.n_blocks(),
        seg.n_blocks(),
        "frequency model and segmentation disagree on block count"
    );
    seg.ranges()
        .map(|r| {
            let sum = |h: &[f64]| h[r.clone()].iter().sum::<f64>();
            PartitionPressure {
                reads: sum(&fm.pq) + sum(&fm.rs) + sum(&fm.sc) + sum(&fm.re),
                writes: sum(&fm.ins)
                    + sum(&fm.de)
                    + sum(&fm.udf)
                    + sum(&fm.utf)
                    + sum(&fm.udb)
                    + sum(&fm.utb),
            }
        })
        .collect()
}

/// Advise a storage mode per partition: compress partitions whose write
/// pressure is at most `write_threshold` times their read pressure
/// (entirely untouched partitions are cold by definition and compress).
pub fn advise_compression(
    fm: &FrequencyModel,
    seg: &Segmentation,
    write_threshold: f64,
) -> Vec<CompressionAdvice> {
    partition_pressure(fm, seg)
        .into_iter()
        .map(|p| {
            if p.writes <= write_threshold * p.reads.max(1.0) {
                CompressionAdvice::Compress
            } else {
                CompressionAdvice::StayPlain
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fm_with(reads_block: usize, writes_block: usize, n: usize) -> FrequencyModel {
        let mut fm = FrequencyModel::new(n);
        fm.pq[reads_block] = 10.0;
        fm.rs[reads_block] = 2.0;
        fm.ins[writes_block] = 5.0;
        fm.de[writes_block] = 1.0;
        fm
    }

    #[test]
    fn pressure_aggregates_per_partition() {
        let fm = fm_with(1, 6, 8);
        let seg = Segmentation::equi(8, 2); // blocks [0,4) and [4,8)
        let p = partition_pressure(&fm, &seg);
        assert_eq!(p.len(), 2);
        assert!((p[0].reads - 12.0).abs() < 1e-12);
        assert!((p[0].writes).abs() < 1e-12);
        assert!((p[1].reads).abs() < 1e-12);
        assert!((p[1].writes - 6.0).abs() < 1e-12);
    }

    #[test]
    fn advice_separates_hot_writes_from_cold_reads() {
        let fm = fm_with(1, 6, 8);
        let seg = Segmentation::equi(8, 2);
        let advice = advise_compression(&fm, &seg, 0.05);
        assert_eq!(advice[0], CompressionAdvice::Compress);
        assert_eq!(advice[1], CompressionAdvice::StayPlain);
    }

    #[test]
    fn untouched_partitions_are_cold() {
        let fm = FrequencyModel::new(4);
        let seg = Segmentation::equi(4, 4);
        assert!(advise_compression(&fm, &seg, 0.0)
            .iter()
            .all(|a| *a == CompressionAdvice::Compress));
    }

    #[test]
    fn threshold_scales_with_read_pressure() {
        let mut fm = FrequencyModel::new(2);
        fm.pq[0] = 100.0;
        fm.ins[0] = 4.0; // 4 writes vs 100 reads: below a 5% threshold
        fm.pq[1] = 100.0;
        fm.ins[1] = 6.0; // above it
        let seg = Segmentation::equi(2, 2);
        let advice = advise_compression(&fm, &seg, 0.05);
        assert_eq!(advice[0], CompressionAdvice::Compress);
        assert_eq!(advice[1], CompressionAdvice::StayPlain);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mismatched_widths_rejected() {
        let fm = FrequencyModel::new(4);
        let seg = Segmentation::equi(8, 2);
        let _ = partition_pressure(&fm, &seg);
    }
}
