//! The four calibrated cost constants of the I/O model (§4.4, §4.5).
//!
//! "We assume that accessing blocks comes at a cost following a standard
//! I/O model where we have four main access patterns: random read RR,
//! random write RW, sequential read SR, and sequential write SW. The exact
//! values are determined by micro-benchmarking."
//!
//! The paper's measured values on their Xeon (§4.5): random read/write of a
//! memory block ≈ 100 ns, sequential access amortized to **14× lower** cost
//! per block. Those are the defaults here; `casper-engine::calibrate`
//! re-measures them on the host.

/// Per-block access costs in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConstants {
    /// Random read of one block.
    pub rr: f64,
    /// Random write of one block.
    pub rw: f64,
    /// Sequential read of one block.
    pub sr: f64,
    /// Sequential write of one block.
    pub sw: f64,
}

impl Default for CostConstants {
    fn default() -> Self {
        Self::paper()
    }
}

impl CostConstants {
    /// The paper's §4.5 measurements: `RR = RW = 100ns`, sequential 14×
    /// cheaper.
    pub fn paper() -> Self {
        Self {
            rr: 100.0,
            rw: 100.0,
            sr: 100.0 / 14.0,
            sw: 100.0 / 14.0,
        }
    }

    /// Construct from explicit measurements.
    pub fn new(rr: f64, rw: f64, sr: f64, sw: f64) -> Self {
        assert!(
            rr > 0.0 && rw > 0.0 && sr > 0.0 && sw > 0.0,
            "cost constants must be positive"
        );
        Self { rr, rw, sr, sw }
    }

    /// Ratio of random to sequential read cost (the paper reports 14×).
    pub fn random_seq_ratio(&self) -> f64 {
        self.rr / self.sr
    }

    /// Evaluate an [`casper_storage::OpCost`] access pattern under these
    /// constants, in nanoseconds.
    pub fn nanos_of(&self, cost: &casper_storage::OpCost) -> f64 {
        cost.nanos(self.rr, self.rw, self.sr, self.sw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = CostConstants::paper();
        assert_eq!(c.rr, 100.0);
        assert!((c.random_seq_ratio() - 14.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive() {
        let _ = CostConstants::new(0.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn nanos_of_op_cost() {
        let c = CostConstants::new(10.0, 20.0, 1.0, 2.0);
        let oc = casper_storage::OpCost {
            random_reads: 1,
            random_writes: 1,
            seq_reads: 5,
            seq_writes: 0,
            ..Default::default()
        };
        assert!((c.nanos_of(&oc) - 35.0).abs() < 1e-9);
    }
}
