//! The block-access cost model of §4.4 and its verification helpers (§4.5).

mod compression;
mod constants;
mod model;
mod terms;
mod verify;

pub use compression::{
    advise_compression, partition_pressure, CompressionAdvice, PartitionPressure,
};
pub use constants::CostConstants;
pub use model::{
    bck_read_closed, bck_read_literal, cost_of_boundaries, cost_of_segmentation, fwd_read_closed,
    fwd_read_literal, trail_parts, OpCostBreakdown,
};
pub use terms::BlockTerms;
pub use verify::{
    predicted_insert_nanos, predicted_point_access, predicted_point_query_nanos,
    predicted_range_access, predicted_update_nanos, RangePartKind, ScanAccess,
};
