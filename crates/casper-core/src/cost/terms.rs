//! The per-block coefficient vectors of Eq. 17.
//!
//! The total workload cost (Eq. 16) factors into four per-block terms that
//! depend only on the Frequency Model and the cost constants:
//!
//! ```text
//! fixed_term_i = RR·(rs+pq+in+de+2udf+2udb) + SR·(re+sc) + RW·(in+de+2udf+2udb)
//! bck_term_i   = SR·(rs+pq+de+udf+udb)
//! fwd_term_i   = SR·(re+pq+de+udf+udb)
//! parts_term_i = (RR+RW)·(in+de+udf−utf−udb+utb)
//! ```
//!
//! multiplied respectively by 1, `bck_read(i)`, `fwd_read(i)` and
//! `trail_parts(i)`. Note `parts_term` may be **negative** (the `−utf`,
//! `−udb` contributions) — the solver handles signed boundary costs.

use super::constants::CostConstants;
use crate::fm::FrequencyModel;

/// Per-block cost coefficients (Eq. 17), precomputed from a
/// [`FrequencyModel`] and [`CostConstants`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockTerms {
    /// Partition-independent cost per block.
    pub fixed: Vec<f64>,
    /// Coefficient of `bck_read(i)` (leading blocks in the same partition).
    pub bck: Vec<f64>,
    /// Coefficient of `fwd_read(i)` (trailing blocks in the same partition).
    pub fwd: Vec<f64>,
    /// Coefficient of `trail_parts(i)` (boundaries at or after block `i`).
    pub parts: Vec<f64>,
}

impl BlockTerms {
    /// Compute Eq. 17 for every block.
    pub fn from_fm(fm: &FrequencyModel, c: &CostConstants) -> Self {
        let n = fm.n_blocks();
        let mut fixed = Vec::with_capacity(n);
        let mut bck = Vec::with_capacity(n);
        let mut fwd = Vec::with_capacity(n);
        let mut parts = Vec::with_capacity(n);
        for i in 0..n {
            let (pq, rs, sc, re) = (fm.pq[i], fm.rs[i], fm.sc[i], fm.re[i]);
            let (ins, de) = (fm.ins[i], fm.de[i]);
            let (udf, utf, udb, utb) = (fm.udf[i], fm.utf[i], fm.udb[i], fm.utb[i]);
            fixed.push(
                c.rr * (rs + pq + ins + de + 2.0 * udf + 2.0 * udb)
                    + c.sr * (re + sc)
                    + c.rw * (ins + de + 2.0 * udf + 2.0 * udb),
            );
            bck.push(c.sr * (rs + pq + de + udf + udb));
            fwd.push(c.sr * (re + pq + de + udf + udb));
            parts.push((c.rr + c.rw) * (ins + de + udf - utf - udb + utb));
        }
        Self {
            fixed,
            bck,
            fwd,
            parts,
        }
    }

    /// Number of blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.fixed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_point_queries() {
        let mut fm = FrequencyModel::new(3);
        fm.pq = vec![2.0, 0.0, 1.0];
        let c = CostConstants::new(100.0, 100.0, 10.0, 10.0);
        let t = BlockTerms::from_fm(&fm, &c);
        assert_eq!(t.fixed, vec![200.0, 0.0, 100.0]);
        assert_eq!(t.bck, vec![20.0, 0.0, 10.0]);
        assert_eq!(t.fwd, vec![20.0, 0.0, 10.0]);
        assert_eq!(t.parts, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn inserts_hit_fixed_and_parts() {
        let mut fm = FrequencyModel::new(2);
        fm.ins = vec![1.0, 0.0];
        let c = CostConstants::new(100.0, 50.0, 10.0, 10.0);
        let t = BlockTerms::from_fm(&fm, &c);
        assert_eq!(t.fixed[0], 150.0); // RR + RW
        assert_eq!(t.parts[0], 150.0); // (RR+RW)
        assert_eq!(t.bck[0], 0.0);
        assert_eq!(t.fwd[0], 0.0);
    }

    #[test]
    fn updates_can_make_parts_negative() {
        // An update *into* block 1 (utf) with its source in block 0 makes
        // parts_term of block 1 negative.
        let mut fm = FrequencyModel::new(2);
        fm.udf = vec![1.0, 0.0];
        fm.utf = vec![0.0, 1.0];
        let c = CostConstants::paper();
        let t = BlockTerms::from_fm(&fm, &c);
        assert!(t.parts[0] > 0.0);
        assert!(t.parts[1] < 0.0);
        // Forward update fixed cost: 2RR + 2RW at the source block.
        assert!((t.fixed[0] - (2.0 * c.rr + 2.0 * c.rw)).abs() < 1e-9);
    }

    #[test]
    fn deletes_contribute_everywhere() {
        let mut fm = FrequencyModel::new(1);
        fm.de = vec![1.0];
        let c = CostConstants::new(100.0, 100.0, 10.0, 10.0);
        let t = BlockTerms::from_fm(&fm, &c);
        assert_eq!(t.fixed[0], 200.0);
        assert_eq!(t.bck[0], 10.0);
        assert_eq!(t.fwd[0], 10.0);
        assert_eq!(t.parts[0], 200.0);
    }
}
