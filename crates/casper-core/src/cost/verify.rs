//! Closed-form per-operation latency predictions used by the Fig. 9
//! cost-model verification experiment (§4.5).
//!
//! Fig. 9 validates exactly two predictions, because together they exercise
//! both partition-dependent cost functions:
//!
//! * **inserts** — linear in the number of *trailing partitions*
//!   (Eq. 8/9): `cost_in = (RR + RW) · (1 + trail_parts)`;
//! * **point queries** — linear in the *partition size*
//!   (Eq. 2/4/7): `cost_pq = RR + SR · (blocks − 1)`.

use super::constants::CostConstants;

/// Predicted latency (ns) of one insert into partition `m` (0-based) of a
/// chunk with `k` partitions (Eq. 9 with `trail_parts = k − m`).
pub fn predicted_insert_nanos(c: &CostConstants, k: usize, m: usize) -> f64 {
    assert!(m < k);
    (c.rr + c.rw) * (1.0 + (k - m) as f64)
}

/// Predicted latency (ns) of one point query against a partition spanning
/// `blocks` logical blocks (Eq. 7 with `fwd_read + bck_read = blocks − 1`).
pub fn predicted_point_query_nanos(c: &CostConstants, blocks: usize) -> f64 {
    assert!(blocks >= 1);
    c.rr + c.sr * (blocks as f64 - 1.0)
}

/// Predicted latency (ns) of one direct-ripple update from partition `m` to
/// partition `t` of a `k`-partition chunk whose partitions each span
/// `blocks_per_partition` blocks (Eq. 12/13 plus the embedded point query).
pub fn predicted_update_nanos(
    c: &CostConstants,
    m: usize,
    t: usize,
    blocks_per_partition: usize,
) -> f64 {
    let pq = predicted_point_query_nanos(c, blocks_per_partition);
    let ripple_span = m.abs_diff(t) as f64;
    pq + (c.rr + 2.0 * c.rw) + (c.rr + c.rw) * ripple_span
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_prediction_linear_in_trailing_partitions() {
        let c = CostConstants::paper();
        let base = predicted_insert_nanos(&c, 100, 99);
        let worst = predicted_insert_nanos(&c, 100, 0);
        // First partition pays ~100 partition steps vs 1 for the last.
        assert!((worst / base - 101.0 / 2.0).abs() < 1e-9);
        // Strictly decreasing in m.
        for m in 1..100 {
            assert!(predicted_insert_nanos(&c, 100, m) < predicted_insert_nanos(&c, 100, m - 1));
        }
    }

    #[test]
    fn point_query_prediction_linear_in_partition_size() {
        let c = CostConstants::paper();
        let one = predicted_point_query_nanos(&c, 1);
        assert!((one - c.rr).abs() < 1e-9);
        let big = predicted_point_query_nanos(&c, 15);
        assert!((big - (c.rr + 14.0 * c.sr)).abs() < 1e-9);
    }

    #[test]
    fn update_prediction_spans_both_directions() {
        let c = CostConstants::paper();
        let fwd = predicted_update_nanos(&c, 1, 5, 2);
        let bwd = predicted_update_nanos(&c, 5, 1, 2);
        assert!((fwd - bwd).abs() < 1e-9, "ripple cost is symmetric in span");
        let local = predicted_update_nanos(&c, 3, 3, 2);
        assert!(local < fwd);
    }
}
