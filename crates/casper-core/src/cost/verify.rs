//! Closed-form per-operation latency predictions used by the Fig. 9
//! cost-model verification experiment (§4.5).
//!
//! Fig. 9 validates exactly two predictions, because together they exercise
//! both partition-dependent cost functions:
//!
//! * **inserts** — linear in the number of *trailing partitions*
//!   (Eq. 8/9): `cost_in = (RR + RW) · (1 + trail_parts)`;
//! * **point queries** — linear in the *partition size*
//!   (Eq. 2/4/7): `cost_pq = RR + SR · (blocks − 1)`.
//!
//! The **kernel-aware access model** below extends those closed forms to
//! the zone-map fast paths the scan kernels actually execute: a point probe
//! whose value falls outside the target partition's zone touches *zero*
//! blocks (a pruned miss), and a range scan classifies every overlapping
//! partition as pruned / blind / filtered — blind partitions stream
//! sequentially behind a single leading random jump, while each filtered
//! partition pays its own random jump. These predictions match the engine's
//! measured [`OpCost`](casper_storage::OpCost) block counts *exactly*
//! (asserted by the tests here and by the fig09 verification binary), which
//! is what lets Fig. 9 assert equality on pruned scans too.

use super::constants::CostConstants;
use casper_storage::OpCost;

/// Predicted latency (ns) of one insert into partition `m` (0-based) of a
/// chunk with `k` partitions (Eq. 9 with `trail_parts = k − m`).
pub fn predicted_insert_nanos(c: &CostConstants, k: usize, m: usize) -> f64 {
    assert!(m < k);
    (c.rr + c.rw) * (1.0 + (k - m) as f64)
}

/// Predicted latency (ns) of one point query against a partition spanning
/// `blocks` logical blocks (Eq. 7 with `fwd_read + bck_read = blocks − 1`).
pub fn predicted_point_query_nanos(c: &CostConstants, blocks: usize) -> f64 {
    assert!(blocks >= 1);
    c.rr + c.sr * (blocks as f64 - 1.0)
}

/// Predicted latency (ns) of one direct-ripple update from partition `m` to
/// partition `t` of a `k`-partition chunk whose partitions each span
/// `blocks_per_partition` blocks (Eq. 12/13 plus the embedded point query).
pub fn predicted_update_nanos(
    c: &CostConstants,
    m: usize,
    t: usize,
    blocks_per_partition: usize,
) -> f64 {
    let pq = predicted_point_query_nanos(c, blocks_per_partition);
    let ripple_span = m.abs_diff(t) as f64;
    pq + (c.rr + 2.0 * c.rw) + (c.rr + c.rw) * ripple_span
}

/// Predicted block-level access pattern of one kernel-path scan — the
/// read-side projection of an [`OpCost`] (writes and probes are separate
/// cost classes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanAccess {
    /// Random block reads (partition jumps).
    pub random_reads: u64,
    /// Sequential block reads (streamed continuation blocks).
    pub seq_reads: u64,
}

impl ScanAccess {
    /// Evaluate the access pattern under the cost constants (Eq. 17's RR/SR
    /// classes).
    pub fn nanos(&self, c: &CostConstants) -> f64 {
        self.random_reads as f64 * c.rr + self.seq_reads as f64 * c.sr
    }

    /// Whether a measured [`OpCost`] performed exactly this read pattern.
    pub fn matches(&self, cost: &OpCost) -> bool {
        self.random_reads == cost.random_reads && self.seq_reads == cost.seq_reads
    }
}

/// How the scan kernels treat one partition overlapping a range predicate,
/// after consulting its zone map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangePartKind {
    /// Zone disjoint from the predicate (or no live values): no block of
    /// the partition is read.
    Pruned,
    /// Zone fully inside the predicate: every live value qualifies and the
    /// partition streams blindly — including first/last partitions, which
    /// the covering bounds alone could not prove.
    Blind {
        /// Logical blocks the partition's live region spans.
        blocks: u64,
    },
    /// Zone partially overlapping: the partition is scanned through the
    /// filtering kernel and pays its own random jump.
    Filtered {
        /// Logical blocks the scan streams (live blocks for plain
        /// partitions, encoded blocks for compressed fragments).
        blocks: u64,
    },
}

/// Predicted access pattern of a point query against a partition spanning
/// `blocks` live blocks. A zone-pruned miss (`in_zone == false`) resolves
/// from metadata alone: zero blocks touched — the fast path the plain
/// Eq. 7 closed form cannot express.
pub fn predicted_point_access(in_zone: bool, blocks: u64) -> ScanAccess {
    if !in_zone {
        return ScanAccess::default();
    }
    ScanAccess {
        random_reads: 1,
        seq_reads: blocks.saturating_sub(1),
    }
}

/// Predicted access pattern of a range scan over the partitions spanned by
/// the predicate, classified per [`RangePartKind`]. Mirrors the engine's
/// scan driver exactly: pruned partitions are free; the first partition
/// actually read pays the random jump and every *blind* partition after it
/// streams sequentially; each *filtered* partition pays its own random jump
/// (the filtering kernel re-seeks into its live region).
pub fn predicted_range_access(parts: &[RangePartKind]) -> ScanAccess {
    let mut acc = ScanAccess::default();
    let mut first_touch = true;
    for part in parts {
        match *part {
            RangePartKind::Pruned => {}
            RangePartKind::Blind { blocks } => {
                if first_touch {
                    acc.random_reads += 1;
                    acc.seq_reads += blocks.saturating_sub(1);
                } else {
                    acc.seq_reads += blocks;
                }
                first_touch = false;
            }
            RangePartKind::Filtered { blocks } => {
                acc.random_reads += 1;
                acc.seq_reads += blocks.saturating_sub(1);
                first_touch = false;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_prediction_linear_in_trailing_partitions() {
        let c = CostConstants::paper();
        let base = predicted_insert_nanos(&c, 100, 99);
        let worst = predicted_insert_nanos(&c, 100, 0);
        // First partition pays ~100 partition steps vs 1 for the last.
        assert!((worst / base - 101.0 / 2.0).abs() < 1e-9);
        // Strictly decreasing in m.
        for m in 1..100 {
            assert!(predicted_insert_nanos(&c, 100, m) < predicted_insert_nanos(&c, 100, m - 1));
        }
    }

    #[test]
    fn point_query_prediction_linear_in_partition_size() {
        let c = CostConstants::paper();
        let one = predicted_point_query_nanos(&c, 1);
        assert!((one - c.rr).abs() < 1e-9);
        let big = predicted_point_query_nanos(&c, 15);
        assert!((big - (c.rr + 14.0 * c.sr)).abs() < 1e-9);
    }

    #[test]
    fn update_prediction_spans_both_directions() {
        let c = CostConstants::paper();
        let fwd = predicted_update_nanos(&c, 1, 5, 2);
        let bwd = predicted_update_nanos(&c, 5, 1, 2);
        assert!((fwd - bwd).abs() < 1e-9, "ripple cost is symmetric in span");
        let local = predicted_update_nanos(&c, 3, 3, 2);
        assert!(local < fwd);
    }

    // ------------------------------------------------------------------
    // Kernel-aware access model: exact equality against the engine's
    // measured OpCost on the zone-map fast paths.
    // ------------------------------------------------------------------

    use casper_storage::ghost::GhostPlan;
    use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk};

    /// Even keys 2..=32 over 4 two-block partitions (2 values per block):
    /// zones [2,8], [10,16], [18,24], [26,32] with gaps in between.
    fn even_chunk() -> PartitionedChunk<u64> {
        PartitionedChunk::build(
            (1..=16u64).map(|x| x * 2).collect(),
            &PartitionSpec::from_block_sizes(&[2, 2, 2, 2]),
            BlockLayout {
                block_bytes: 16,
                value_width: 8,
            },
            &GhostPlan::none(4),
            ChunkConfig::default(),
        )
        .expect("build")
    }

    #[test]
    fn pruned_point_miss_matches_measured_cost_exactly() {
        let chunk = even_chunk();
        // 9 falls between partition 0's zone [2,8] and partition 1's zone
        // [10,16]: the probe routes to partition 1, the zone prunes it.
        let r = chunk.point_query(9);
        assert!(r.positions.is_empty());
        assert!(predicted_point_access(false, 2).matches(&r.cost));
        assert_eq!(r.cost.values_scanned, 0, "pruned miss touches no values");
    }

    #[test]
    fn in_zone_point_matches_measured_cost_exactly() {
        let chunk = even_chunk();
        for v in [2u64, 11, 16, 32] {
            let r = chunk.point_query(v);
            assert!(
                predicted_point_access(true, 2).matches(&r.cost),
                "point({v}): predicted != measured {:?}",
                r.cost
            );
        }
    }

    #[test]
    fn blind_first_last_range_matches_measured_cost_exactly() {
        let chunk = even_chunk();
        // [2, 33) covers every zone entirely: all four partitions stream
        // blindly behind one random jump.
        let (n, cost) = chunk.range_count(2, 33);
        assert_eq!(n, 16);
        let pred = predicted_range_access(&[RangePartKind::Blind { blocks: 2 }; 4]);
        assert!(
            pred.matches(&cost),
            "predicted {pred:?} != measured {cost:?}"
        );
    }

    #[test]
    fn clipped_range_with_pruned_partition_matches_measured_cost_exactly() {
        let chunk = even_chunk();
        // [4, 16) clips partition 0 and partition 1 (filtered); partitions
        // 2 and 3 are past the range and never visited.
        let (n, cost) = chunk.range_count(4, 16);
        assert_eq!(n, 6); // 4,6,8,10,12,14
        let pred = predicted_range_access(&[
            RangePartKind::Filtered { blocks: 2 },
            RangePartKind::Filtered { blocks: 2 },
        ]);
        assert!(
            pred.matches(&cost),
            "predicted {pred:?} != measured {cost:?}"
        );
        // [9, 10): routes into partition 1's covering range but misses its
        // zone — the whole scan is pruned, zero blocks.
        let (n, cost) = chunk.range_count(9, 10);
        assert_eq!(n, 0);
        let pred = predicted_range_access(&[RangePartKind::Pruned]);
        assert!(
            pred.matches(&cost),
            "predicted {pred:?} != measured {cost:?}"
        );
        assert_eq!(cost.values_scanned, 0);
    }

    #[test]
    fn mixed_blind_and_filtered_range_matches_measured_cost_exactly() {
        let chunk = even_chunk();
        // [4, 25): partition 0 filtered (zone [2,8] straddles lo), 1 blind,
        // 2 blind (zone [18,24] fully inside since 24 < 25), 3 pruned
        // (zone [26,32] disjoint).
        let (n, cost) = chunk.range_count(4, 25);
        assert_eq!(n, 11); // 4..=24 even
        let pred = predicted_range_access(&[
            RangePartKind::Filtered { blocks: 2 },
            RangePartKind::Blind { blocks: 2 },
            RangePartKind::Blind { blocks: 2 },
            RangePartKind::Pruned,
        ]);
        assert!(
            pred.matches(&cost),
            "predicted {pred:?} != measured {cost:?}"
        );
    }

    #[test]
    fn scan_access_nanos_uses_rr_sr_classes() {
        let c = CostConstants::new(100.0, 50.0, 10.0, 5.0);
        let a = ScanAccess {
            random_reads: 2,
            seq_reads: 3,
        };
        assert!((a.nanos(&c) - 230.0).abs() < 1e-9);
        assert_eq!(ScanAccess::default().nanos(&c), 0.0);
    }
}
