//! The Frequency Model (§4.2, §4.3, Fig. 7, Fig. 8).

mod capture;
mod distribution;
mod histograms;

pub use capture::{FmBuilder, Op};
pub use distribution::{AccessDistribution, RangeSpec, WorkloadSpec};
pub use histograms::FrequencyModel;
