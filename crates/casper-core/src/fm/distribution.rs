//! Learning the Frequency Model from access-pattern *distributions*
//! (§4.3, Fig. 8b).
//!
//! Instead of replaying a sample workload, the FM can be synthesized from
//! statistical knowledge: per-operation counts plus a distribution of
//! accesses over the (block-granularity) domain. Bins receive fractional
//! expected counts; everything downstream (cost model, solver) is agnostic
//! to whether the mass came from samples or expectations.

use super::histograms::FrequencyModel;

/// A normalized access distribution over `n` logical blocks.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessDistribution {
    /// Every block equally likely.
    Uniform,
    /// Zipf-like skew with exponent `theta`, hottest at block 0.
    /// Weights `∝ 1/(i+1)^theta`.
    Zipf {
        /// Skew exponent (0 = uniform, 1 ≈ classic Zipf).
        theta: f64,
    },
    /// Zipf-like skew hottest at the *last* block ("skewed accesses to more
    /// recent data", §7.2).
    ZipfRecent {
        /// Skew exponent.
        theta: f64,
    },
    /// Gaussian bump centred at `mean` (fraction of the domain) with
    /// standard deviation `std` (fraction of the domain) — the shape of the
    /// Fig. 16a training histograms.
    Gaussian {
        /// Centre, as a fraction of the domain in `[0, 1]`.
        mean: f64,
        /// Standard deviation, as a fraction of the domain.
        std: f64,
    },
    /// Explicit per-block weights (re-normalized).
    Weights(Vec<f64>),
}

impl AccessDistribution {
    /// Normalized per-block weights (sum to 1).
    pub fn block_weights(&self, n: usize) -> Vec<f64> {
        assert!(n > 0);
        let mut w: Vec<f64> = match self {
            AccessDistribution::Uniform => vec![1.0; n],
            AccessDistribution::Zipf { theta } => (0..n)
                .map(|i| 1.0 / ((i + 1) as f64).powf(*theta))
                .collect(),
            AccessDistribution::ZipfRecent { theta } => (0..n)
                .map(|i| 1.0 / ((n - i) as f64).powf(*theta))
                .collect(),
            AccessDistribution::Gaussian { mean, std } => {
                let mu = mean * (n as f64 - 1.0);
                let sigma = (std * n as f64).max(1e-9);
                (0..n)
                    .map(|i| {
                        let z = (i as f64 - mu) / sigma;
                        (-0.5 * z * z).exp()
                    })
                    .collect()
            }
            AccessDistribution::Weights(w) => {
                assert_eq!(w.len(), n, "weight vector length mismatch");
                w.clone()
            }
        };
        let sum: f64 = w.iter().sum();
        assert!(sum > 0.0, "distribution has zero mass");
        for v in &mut w {
            *v /= sum;
        }
        w
    }
}

/// Range-query shape: where ranges start and how many blocks they span.
#[derive(Debug, Clone)]
pub struct RangeSpec {
    /// Distribution of the start block.
    pub start: AccessDistribution,
    /// Mean range length in blocks (≥ 1).
    pub mean_len_blocks: f64,
}

/// Statistical description of a workload: expected operation counts plus
/// their access distributions.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// (count, distribution) of point queries.
    pub point: Option<(f64, AccessDistribution)>,
    /// (count, shape) of range queries.
    pub range: Option<(f64, RangeSpec)>,
    /// (count, distribution) of inserts.
    pub insert: Option<(f64, AccessDistribution)>,
    /// (count, distribution) of deletes.
    pub delete: Option<(f64, AccessDistribution)>,
    /// (count, from-distribution, to-distribution) of updates. Expected
    /// forward/backward split is derived from the two distributions.
    pub update: Option<(f64, AccessDistribution, AccessDistribution)>,
}

impl WorkloadSpec {
    /// An empty spec.
    pub fn none() -> Self {
        Self {
            point: None,
            range: None,
            insert: None,
            delete: None,
            update: None,
        }
    }
}

impl FrequencyModel {
    /// Synthesize a model of `n_blocks` bins from a [`WorkloadSpec`]
    /// (Fig. 8b): every operation type contributes its expected count,
    /// spread over the blocks according to its distribution.
    pub fn from_distributions(n_blocks: usize, spec: &WorkloadSpec) -> FrequencyModel {
        let mut fm = FrequencyModel::new(n_blocks);
        let n = n_blocks;
        if let Some((count, dist)) = &spec.point {
            for (i, w) in dist.block_weights(n).iter().enumerate() {
                fm.pq[i] += count * w;
            }
        }
        if let Some((count, dist)) = &spec.insert {
            for (i, w) in dist.block_weights(n).iter().enumerate() {
                fm.ins[i] += count * w;
            }
        }
        if let Some((count, dist)) = &spec.delete {
            for (i, w) in dist.block_weights(n).iter().enumerate() {
                fm.de[i] += count * w;
            }
        }
        if let Some((count, range)) = &spec.range {
            let len = range.mean_len_blocks.max(1.0);
            let starts = range.start.block_weights(n);
            for (s, w) in starts.iter().enumerate() {
                let mass = count * w;
                if mass == 0.0 {
                    continue;
                }
                // Expected end block for ranges starting at s.
                let end = ((s as f64 + len - 1.0).round() as usize).min(n - 1);
                fm.rs[s] += mass;
                if end > s {
                    for b in s + 1..end {
                        fm.sc[b] += mass;
                    }
                    fm.re[end] += mass;
                }
            }
        }
        if let Some((count, from, to)) = &spec.update {
            // Expected-value decomposition: mass moving from block i to
            // block j goes forward when j > i, backward otherwise (i == j
            // counts backward, matching capture semantics).
            let fw = from.block_weights(n);
            let tw = to.block_weights(n);
            for (i, &wi) in fw.iter().enumerate() {
                if wi == 0.0 {
                    continue;
                }
                for (j, &wj) in tw.iter().enumerate() {
                    let mass = count * wi * wj;
                    if mass == 0.0 {
                        continue;
                    }
                    if j > i {
                        fm.udf[i] += mass;
                        fm.utf[j] += mass;
                    } else {
                        fm.udb[i] += mass;
                        fm.utb[j] += mass;
                    }
                }
            }
        }
        debug_assert!(fm.validate().is_ok());
        fm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_weights_sum_to_one() {
        let w = AccessDistribution::Uniform.block_weights(8);
        assert_eq!(w.len(), 8);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (x - 0.125).abs() < 1e-12));
    }

    #[test]
    fn zipf_front_loads_mass() {
        let w = AccessDistribution::Zipf { theta: 1.0 }.block_weights(10);
        assert!(w[0] > w[9] * 5.0);
        let wr = AccessDistribution::ZipfRecent { theta: 1.0 }.block_weights(10);
        assert!(wr[9] > wr[0] * 5.0);
        // Mirror images.
        for i in 0..10 {
            assert!((w[i] - wr[9 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_peaks_at_mean() {
        let w = AccessDistribution::Gaussian {
            mean: 0.75,
            std: 0.1,
        }
        .block_weights(100);
        let peak = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!((70..=79).contains(&peak), "peak at {peak}");
    }

    #[test]
    fn synthesized_point_mass_matches_count() {
        let spec = WorkloadSpec {
            point: Some((100.0, AccessDistribution::Uniform)),
            ..WorkloadSpec::none()
        };
        let fm = FrequencyModel::from_distributions(10, &spec);
        assert!((fm.pq.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((fm.pq[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn synthesized_ranges_have_rs_sc_re_structure() {
        let spec = WorkloadSpec {
            range: Some((
                10.0,
                RangeSpec {
                    start: AccessDistribution::Weights(vec![
                        1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
                    ]),
                    mean_len_blocks: 4.0,
                },
            )),
            ..WorkloadSpec::none()
        };
        let fm = FrequencyModel::from_distributions(8, &spec);
        assert!((fm.rs[0] - 10.0).abs() < 1e-9);
        assert!((fm.sc[1] - 10.0).abs() < 1e-9);
        assert!((fm.sc[2] - 10.0).abs() < 1e-9);
        assert!((fm.re[3] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn synthesized_updates_balance() {
        let spec = WorkloadSpec {
            update: Some((
                50.0,
                AccessDistribution::Zipf { theta: 0.8 },
                AccessDistribution::Uniform,
            )),
            ..WorkloadSpec::none()
        };
        let fm = FrequencyModel::from_distributions(16, &spec);
        fm.validate().unwrap();
        let total: f64 = fm.udf.iter().sum::<f64>() + fm.udb.iter().sum::<f64>();
        assert!((total - 50.0).abs() < 1e-9);
    }

    #[test]
    fn weights_variant_requires_matching_length() {
        let d = AccessDistribution::Weights(vec![1.0, 2.0]);
        let w = d.block_weights(2);
        assert!((w[1] - 2.0 / 3.0).abs() < 1e-12);
    }
}
