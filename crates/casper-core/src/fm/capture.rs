//! Learning the Frequency Model from a sample workload (§4.2, Fig. 8a).
//!
//! "When calculating the histograms from a sample workload, we do not
//! actually materialize the results or modify the data; instead, we capture
//! the access patterns as if each operation is executed on the initial
//! dataset." [`FmBuilder`] therefore maps operation endpoints to logical
//! blocks through the *fences* of the initial sorted data (the first value
//! of each block) and increments the matching histogram bins exactly as the
//! worked examples of Fig. 7 prescribe.

use super::histograms::FrequencyModel;
use casper_storage::value::ColumnValue;

/// One logical operation of the paper's repertoire (§3), used both for
/// workload capture and for replay against an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op<K = u64> {
    /// Point query for a value.
    Point(K),
    /// Range query over `[lo, hi)`.
    Range(K, K),
    /// Insert of a value.
    Insert(K),
    /// Delete of a value.
    Delete(K),
    /// Update changing `old` into `new`.
    Update(K, K),
}

/// Builds a [`FrequencyModel`] from a stream of sample operations.
#[derive(Debug, Clone)]
pub struct FmBuilder<K: ColumnValue> {
    /// First value of each block of the initial sorted dataset
    /// (`fences[i] = sorted[i * B]`), ascending.
    fences: Vec<K>,
    fm: FrequencyModel,
}

impl<K: ColumnValue> FmBuilder<K> {
    /// Build from the initial dataset (unsorted; sorted internally) and the
    /// block size in values.
    pub fn from_data(data: &[K], values_per_block: usize) -> Self {
        assert!(!data.is_empty(), "need data to derive block fences");
        assert!(values_per_block > 0);
        let mut sorted = data.to_vec();
        sorted.sort_unstable();
        let fences = sorted
            .chunks(values_per_block)
            .map(|c| c[0])
            .collect::<Vec<_>>();
        let n = fences.len();
        Self {
            fences,
            fm: FrequencyModel::new(n),
        }
    }

    /// Build directly from precomputed block fences (first value of each
    /// block, ascending).
    pub fn from_fences(fences: Vec<K>) -> Self {
        assert!(!fences.is_empty());
        debug_assert!(fences.windows(2).all(|w| w[0] <= w[1]));
        let n = fences.len();
        Self {
            fences,
            fm: FrequencyModel::new(n),
        }
    }

    /// Number of logical blocks.
    pub fn n_blocks(&self) -> usize {
        self.fences.len()
    }

    /// Block that holds (or would hold) value `v`: the last block whose
    /// fence is `<= v`, i.e. the block containing `v`'s rank in the initial
    /// sorted data, at block granularity.
    pub fn block_of(&self, v: K) -> usize {
        match self.fences.partition_point(|&f| f <= v) {
            0 => 0,
            b => b - 1,
        }
    }

    /// Record one operation (Fig. 7 semantics).
    pub fn record(&mut self, op: Op<K>) {
        match op {
            Op::Point(v) => self.record_point(v),
            Op::Range(lo, hi) => self.record_range(lo, hi),
            Op::Insert(v) => self.record_insert(v),
            Op::Delete(v) => self.record_delete(v),
            Op::Update(old, new) => self.record_update(old, new),
        }
    }

    /// Record a whole batch.
    pub fn record_all(&mut self, ops: impl IntoIterator<Item = Op<K>>) {
        for op in ops {
            self.record(op);
        }
    }

    /// Point query: one access to the block that may hold `v` (Fig. 7a).
    pub fn record_point(&mut self, v: K) {
        let b = self.block_of(v);
        self.fm.pq[b] += 1.0;
    }

    /// Range query over `[lo, hi)`: `rs` at the first block, `re` at the
    /// last, `sc` for everything in between (Fig. 7b/7c). A range that
    /// starts and ends in the same block records only `rs` — the single
    /// random access covers it.
    pub fn record_range(&mut self, lo: K, hi: K) {
        if hi <= lo {
            return;
        }
        let first = self.block_of(lo);
        // The end block is the one holding the largest value *below* `hi`.
        let last = match self.fences.partition_point(|&f| f < hi) {
            0 => 0,
            b => b - 1,
        };
        let last = last.max(first);
        self.fm.rs[first] += 1.0;
        if last > first {
            for b in first + 1..last {
                self.fm.sc[b] += 1.0;
            }
            self.fm.re[last] += 1.0;
        }
    }

    /// Insert: one access to the block `v` would land in (Fig. 7e).
    pub fn record_insert(&mut self, v: K) {
        let b = self.block_of(v);
        self.fm.ins[b] += 1.0;
    }

    /// Delete: one access to the block that may hold `v` (Fig. 7d).
    pub fn record_delete(&mut self, v: K) {
        let b = self.block_of(v);
        self.fm.de[b] += 1.0;
    }

    /// Update: forward histograms when the new value is larger, backward
    /// otherwise; `i == j` is recorded backward "by convention" (§4.4).
    pub fn record_update(&mut self, old: K, new: K) {
        let from = self.block_of(old);
        let to = self.block_of(new);
        if new > old && to > from {
            self.fm.udf[from] += 1.0;
            self.fm.utf[to] += 1.0;
        } else {
            self.fm.udb[from] += 1.0;
            self.fm.utb[to] += 1.0;
        }
    }

    /// Finish and return the model.
    pub fn finish(self) -> FrequencyModel {
        debug_assert!(self.fm.validate().is_ok());
        self.fm
    }

    /// Peek at the model under construction.
    pub fn model(&self) -> &FrequencyModel {
        &self.fm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Fig. 6/7: 16 values, blocks of two.
    /// Sorted: 1 3 | 4 5 | 7 8 | 15 18 | 19 20 | 32 55 | 65 67 | 82 95
    fn fig7_builder() -> FmBuilder<u64> {
        let data = vec![3, 1, 5, 4, 7, 8, 15, 18, 20, 19, 32, 55, 65, 67, 82, 95];
        FmBuilder::from_data(&data, 2)
    }

    #[test]
    fn fig7a_point_query() {
        let mut b = fig7_builder();
        b.record_point(4);
        let fm = b.finish();
        assert_eq!(fm.pq[1], 1.0);
        assert_eq!(fm.pq.iter().sum::<f64>(), 1.0);
    }

    #[test]
    fn fig7b_range_4_to_19() {
        // Paper queries 4 ≤ v ≤ 19; our half-open equivalent is [4, 20).
        let mut b = fig7_builder();
        b.record_range(4, 20);
        let fm = b.finish();
        assert_eq!(fm.rs[1], 1.0, "rs1");
        assert_eq!(fm.sc[2], 1.0, "sc2");
        assert_eq!(fm.sc[3], 1.0, "sc3");
        assert_eq!(fm.re[4], 1.0, "re4");
        assert_eq!(fm.total_mass(), 4.0);
    }

    #[test]
    fn fig7c_range_2_to_66_added() {
        // Paper: after also recording 2 ≤ v ≤ 66 → rs0, sc1..sc5, re6.
        let mut b = fig7_builder();
        b.record_range(4, 20);
        b.record_range(2, 67);
        let fm = b.finish();
        assert_eq!(fm.rs[0], 1.0);
        assert_eq!(fm.rs[1], 1.0);
        assert_eq!(fm.sc[1], 1.0);
        assert_eq!(fm.sc[2], 2.0);
        assert_eq!(fm.sc[3], 2.0);
        assert_eq!(fm.sc[4], 1.0);
        assert_eq!(fm.sc[5], 1.0);
        assert_eq!(fm.re[4], 1.0);
        assert_eq!(fm.re[6], 1.0);
    }

    #[test]
    fn fig7d_delete_32() {
        let mut b = fig7_builder();
        b.record_delete(32);
        assert_eq!(b.model().de[5], 1.0);
    }

    #[test]
    fn fig7e_insert_16() {
        let mut b = fig7_builder();
        b.record_insert(16);
        assert_eq!(b.model().ins[3], 1.0);
    }

    #[test]
    fn fig7f_update_3_to_16_forward() {
        let mut b = fig7_builder();
        b.record_update(3, 16);
        let fm = b.finish();
        assert_eq!(fm.udf[0], 1.0);
        assert_eq!(fm.utf[3], 1.0);
    }

    #[test]
    fn fig7g_update_55_to_17_backward() {
        let mut b = fig7_builder();
        b.record_update(55, 17);
        let fm = b.finish();
        assert_eq!(fm.udb[5], 1.0);
        assert_eq!(fm.utb[3], 1.0);
    }

    #[test]
    fn same_block_update_recorded_backward() {
        let mut b = fig7_builder();
        b.record_update(4, 5); // both in block 1
        let fm = b.finish();
        assert_eq!(fm.udb[1], 1.0);
        assert_eq!(fm.utb[1], 1.0);
        assert_eq!(fm.udf[1], 0.0);
    }

    #[test]
    fn single_block_range_records_rs_only() {
        let mut b = fig7_builder();
        b.record_range(4, 6); // both endpoints in block 1
        let fm = b.finish();
        assert_eq!(fm.rs[1], 1.0);
        assert_eq!(fm.re.iter().sum::<f64>(), 0.0);
        assert_eq!(fm.sc.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn out_of_domain_values_clamp_to_edge_blocks() {
        let mut b = fig7_builder();
        b.record_point(0); // below min → block 0
        b.record_point(10_000); // above max → last block
        let fm = b.finish();
        assert_eq!(fm.pq[0], 1.0);
        assert_eq!(fm.pq[7], 1.0);
    }

    #[test]
    fn record_all_matches_individual_calls() {
        let ops = vec![
            Op::Point(4),
            Op::Range(4, 20),
            Op::Insert(16),
            Op::Delete(32),
            Op::Update(3, 16),
        ];
        let mut a = fig7_builder();
        a.record_all(ops.clone());
        let mut b = fig7_builder();
        for op in ops {
            b.record(op);
        }
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn builder_from_fences_equivalent() {
        let data = vec![3u64, 1, 5, 4, 7, 8, 15, 18, 20, 19, 32, 55, 65, 67, 82, 95];
        let a = FmBuilder::from_data(&data, 2);
        let b = FmBuilder::from_fences(vec![1, 4, 7, 15, 19, 32, 65, 82]);
        assert_eq!(a.n_blocks(), b.n_blocks());
        for v in [0u64, 4, 16, 19, 55, 95, 1000] {
            assert_eq!(a.block_of(v), b.block_of(v), "v={v}");
        }
    }
}
