//! The ten access-pattern histograms of the Frequency Model (§4.2).
//!
//! "FM utilizes ten histograms, each storing the frequency of a different
//! sub-operation": point queries (`pq`), range starts/scans/ends
//! (`rs`/`sc`/`re`), deletes (`de`), inserts (`ins` — `in` is a Rust
//! keyword), and the four update histograms distinguishing the *from*/*to*
//! block and the ripple direction (`udf`/`utf` forward, `udb`/`utb`
//! backward). Each bin corresponds to one logical block of the sorted
//! domain.

/// The Frequency Model: per-block access frequencies for every
/// sub-operation. Counts are `f64` so the model can also be synthesized
/// from fractional (expected-value) distributions (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyModel {
    /// Point-query accesses per block (Fig. 7a).
    pub pq: Vec<f64>,
    /// Range-query start accesses (Fig. 7b).
    pub rs: Vec<f64>,
    /// Range-query full-block scans (Fig. 7b).
    pub sc: Vec<f64>,
    /// Range-query end accesses (Fig. 7b).
    pub re: Vec<f64>,
    /// Deletes per block (Fig. 7d).
    pub de: Vec<f64>,
    /// Inserts per block (Fig. 7e).
    pub ins: Vec<f64>,
    /// Update-from with forward ripple (Fig. 7f).
    pub udf: Vec<f64>,
    /// Update-to with forward ripple (Fig. 7f).
    pub utf: Vec<f64>,
    /// Update-from with backward ripple (Fig. 7g).
    pub udb: Vec<f64>,
    /// Update-to with backward ripple (Fig. 7g).
    pub utb: Vec<f64>,
}

impl FrequencyModel {
    /// An all-zero model over `n_blocks` blocks.
    pub fn new(n_blocks: usize) -> Self {
        assert!(n_blocks > 0, "a frequency model needs at least one block");
        let z = || vec![0.0; n_blocks];
        Self {
            pq: z(),
            rs: z(),
            sc: z(),
            re: z(),
            de: z(),
            ins: z(),
            udf: z(),
            utf: z(),
            udb: z(),
            utb: z(),
        }
    }

    /// Number of logical blocks (`N`).
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.pq.len()
    }

    /// Rebuild a model from its ten histograms in [`FrequencyModel::histograms`]
    /// order (`pq, rs, sc, re, de, in, udf, utf, udb, utb`) — the
    /// persistence round-trip used by snapshot recovery. Validation runs on
    /// the result, so damaged state surfaces as `Err` instead of a model
    /// that later derails the solver.
    pub fn from_histograms(hists: [Vec<f64>; 10]) -> Result<Self, String> {
        let [pq, rs, sc, re, de, ins, udf, utf, udb, utb] = hists;
        if pq.is_empty() {
            return Err("a frequency model needs at least one block".into());
        }
        let fm = Self {
            pq,
            rs,
            sc,
            re,
            de,
            ins,
            udf,
            utf,
            udb,
            utb,
        };
        fm.validate()?;
        Ok(fm)
    }

    /// Iterate over the ten histograms (name, data).
    pub fn histograms(&self) -> [(&'static str, &[f64]); 10] {
        [
            ("pq", &self.pq),
            ("rs", &self.rs),
            ("sc", &self.sc),
            ("re", &self.re),
            ("de", &self.de),
            ("in", &self.ins),
            ("udf", &self.udf),
            ("utf", &self.utf),
            ("udb", &self.udb),
            ("utb", &self.utb),
        ]
    }

    /// Mutable access by histogram name (used by shift transforms).
    pub(crate) fn histograms_mut(&mut self) -> [&mut Vec<f64>; 10] {
        [
            &mut self.pq,
            &mut self.rs,
            &mut self.sc,
            &mut self.re,
            &mut self.de,
            &mut self.ins,
            &mut self.udf,
            &mut self.utf,
            &mut self.udb,
            &mut self.utb,
        ]
    }

    /// Total recorded mass across all histograms.
    pub fn total_mass(&self) -> f64 {
        self.histograms()
            .iter()
            .map(|(_, h)| h.iter().sum::<f64>())
            .sum()
    }

    /// Merge another model into this one (e.g. across sample batches).
    ///
    /// # Panics
    /// Panics when block counts differ.
    pub fn merge(&mut self, other: &FrequencyModel) {
        assert_eq!(self.n_blocks(), other.n_blocks(), "block count mismatch");
        let n = self.n_blocks();
        let mut mine = self.histograms_mut();
        let theirs = other.histograms();
        for (m, (_, t)) in mine.iter_mut().zip(theirs.iter()) {
            for i in 0..n {
                m[i] += t[i];
            }
        }
    }

    /// Scale every bin by `factor` (e.g. to normalize a sample to an
    /// expected ops/second rate).
    pub fn scale(&mut self, factor: f64) {
        for h in self.histograms_mut() {
            for v in h.iter_mut() {
                *v *= factor;
            }
        }
    }

    /// Structural validation: matching lengths, non-negative bins, and the
    /// update pairing invariants (`Σudf == Σutf`, `Σudb == Σutb` — every
    /// recorded update has both a source and a target block).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_blocks();
        for (name, h) in self.histograms() {
            if h.len() != n {
                return Err(format!("histogram {name} has {} bins, want {n}", h.len()));
            }
            if h.iter().any(|&v| !v.is_finite() || v < 0.0) {
                return Err(format!("histogram {name} has a negative or non-finite bin"));
            }
        }
        let sum = |h: &[f64]| h.iter().sum::<f64>();
        if (sum(&self.udf) - sum(&self.utf)).abs() > 1e-6 * (1.0 + sum(&self.udf)) {
            return Err("forward updates unbalanced: Σudf != Σutf".into());
        }
        if (sum(&self.udb) - sum(&self.utb)).abs() > 1e-6 * (1.0 + sum(&self.udb)) {
            return Err("backward updates unbalanced: Σudb != Σutb".into());
        }
        Ok(())
    }

    /// Aggregate bins into a coarser model with `factor`-to-1 block merging
    /// (§6.3 "Variable Histogram Granularity").
    pub fn coarsen(&self, factor: usize) -> FrequencyModel {
        assert!(factor >= 1);
        let n = self.n_blocks().div_ceil(factor);
        let mut out = FrequencyModel::new(n);
        {
            let theirs = self.histograms();
            let mut mine = out.histograms_mut();
            for (m, (_, t)) in mine.iter_mut().zip(theirs.iter()) {
                for (i, &v) in t.iter().enumerate() {
                    m[i / factor] += v;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let fm = FrequencyModel::new(4);
        assert_eq!(fm.n_blocks(), 4);
        assert_eq!(fm.total_mass(), 0.0);
        fm.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = FrequencyModel::new(0);
    }

    #[test]
    fn merge_adds_mass() {
        let mut a = FrequencyModel::new(3);
        a.pq[0] = 2.0;
        let mut b = FrequencyModel::new(3);
        b.pq[0] = 1.0;
        b.ins[2] = 4.0;
        a.merge(&b);
        assert_eq!(a.pq[0], 3.0);
        assert_eq!(a.ins[2], 4.0);
        assert_eq!(a.total_mass(), 7.0);
    }

    #[test]
    fn scale_multiplies_all() {
        let mut a = FrequencyModel::new(2);
        a.rs[1] = 3.0;
        a.sc[0] = 1.0;
        a.scale(2.0);
        assert_eq!(a.rs[1], 6.0);
        assert_eq!(a.sc[0], 2.0);
    }

    #[test]
    fn validate_catches_unbalanced_updates() {
        let mut a = FrequencyModel::new(2);
        a.udf[0] = 1.0; // no matching utf
        assert!(a.validate().is_err());
        a.utf[1] = 1.0;
        a.validate().unwrap();
    }

    #[test]
    fn validate_catches_negative_bins() {
        let mut a = FrequencyModel::new(2);
        a.de[0] = -1.0;
        assert!(a.validate().is_err());
    }

    #[test]
    fn coarsen_halves_resolution() {
        let mut a = FrequencyModel::new(4);
        a.pq = vec![1.0, 2.0, 3.0, 4.0];
        let c = a.coarsen(2);
        assert_eq!(c.n_blocks(), 2);
        assert_eq!(c.pq, vec![3.0, 7.0]);
    }

    #[test]
    fn from_histograms_round_trips_and_validates() {
        let mut a = FrequencyModel::new(3);
        a.pq = vec![1.0, 2.0, 3.0];
        a.udf = vec![1.0, 0.0, 0.0];
        a.utf = vec![0.0, 0.0, 1.0];
        let hists: [Vec<f64>; 10] = [
            a.pq.clone(),
            a.rs.clone(),
            a.sc.clone(),
            a.re.clone(),
            a.de.clone(),
            a.ins.clone(),
            a.udf.clone(),
            a.utf.clone(),
            a.udb.clone(),
            a.utb.clone(),
        ];
        let b = FrequencyModel::from_histograms(hists).unwrap();
        assert_eq!(a, b);
        // Corrupt state (unbalanced updates, wrong lengths) is rejected.
        let mut bad: [Vec<f64>; 10] = Default::default();
        bad[0] = vec![1.0, 2.0];
        bad[6] = vec![1.0, 0.0]; // udf without matching utf
        for h in bad.iter_mut() {
            if h.is_empty() {
                *h = vec![0.0, 0.0];
            }
        }
        assert!(FrequencyModel::from_histograms(bad).is_err());
        let short: [Vec<f64>; 10] = [
            vec![1.0, 2.0],
            vec![0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
            vec![0.0, 0.0],
        ];
        assert!(FrequencyModel::from_histograms(short).is_err());
    }

    #[test]
    fn coarsen_uneven_tail() {
        let mut a = FrequencyModel::new(5);
        a.ins = vec![1.0; 5];
        let c = a.coarsen(2);
        assert_eq!(c.n_blocks(), 3);
        assert_eq!(c.ins, vec![2.0, 2.0, 1.0]);
    }
}
