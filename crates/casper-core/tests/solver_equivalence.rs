//! Cross-solver equivalence: the exact segmentation DP, the literal Eq. 20
//! branch-and-bound, and exhaustive enumeration must agree on the optimal
//! cost for arbitrary valid Frequency Models, with and without SLA
//! constraints — the property that justifies replacing Mosek (DESIGN.md §2).

use casper_core::cost::{cost_of_boundaries, cost_of_segmentation, BlockTerms, CostConstants};
use casper_core::fm::FrequencyModel;
use casper_core::solver::{bip, dp, exhaustive, SolverConstraints};
use proptest::prelude::*;

/// Strategy producing a valid (update-balanced) Frequency Model.
fn fm_strategy(max_blocks: usize) -> impl Strategy<Value = FrequencyModel> {
    (2usize..=max_blocks)
        .prop_flat_map(move |n| {
            let hist = proptest::collection::vec(0.0f64..20.0, n);
            let pairs = proptest::collection::vec((0..n, 0..n), 0..3 * n);
            (
                Just(n),
                hist.clone(),
                hist.clone(),
                hist.clone(),
                hist.clone(),
                hist.clone(),
                hist,
                pairs,
            )
        })
        .prop_map(|(n, pq, rs, sc, re, de, ins, pairs)| {
            let mut fm = FrequencyModel::new(n);
            fm.pq = pq;
            fm.rs = rs;
            fm.sc = sc;
            fm.re = re;
            fm.de = de;
            fm.ins = ins;
            for (i, j) in pairs {
                if j > i {
                    fm.udf[i] += 1.0;
                    fm.utf[j] += 1.0;
                } else {
                    fm.udb[i] += 1.0;
                    fm.utb[j] += 1.0;
                }
            }
            fm
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dp_equals_exhaustive_equals_bnb(fm in fm_strategy(10)) {
        fm.validate().expect("generated FM must be valid");
        let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
        let none = SolverConstraints::none();
        let ex = exhaustive::solve(&terms, &none);
        let d = dp::solve(&terms, &none);
        let (b, _) = bip::solve(&terms, &none);
        let tol = 1e-6 * (1.0 + ex.cost.abs());
        prop_assert!((d.cost - ex.cost).abs() < tol, "dp {} vs exhaustive {}", d.cost, ex.cost);
        prop_assert!((b.cost - ex.cost).abs() < tol, "bnb {} vs exhaustive {}", b.cost, ex.cost);
        // The DP's reported cost must equal re-evaluating its layout.
        let eval = cost_of_segmentation(&d.seg, &terms);
        prop_assert!((d.cost - eval).abs() < tol);
    }

    #[test]
    fn constrained_solvers_agree(
        fm in fm_strategy(9),
        kcap in 1usize..5,
        mps in 2usize..6,
    ) {
        let n = fm.n_blocks();
        let constraints = SolverConstraints {
            max_partitions: Some(kcap),
            max_partition_blocks: Some(mps),
        };
        if !constraints.feasible(n) {
            return Ok(());
        }
        let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
        let ex = exhaustive::solve(&terms, &constraints);
        let d = dp::solve(&terms, &constraints);
        let (b, _) = bip::solve(&terms, &constraints);
        prop_assert!(constraints.admits(&d.seg));
        prop_assert!(constraints.admits(&b.seg));
        let tol = 1e-6 * (1.0 + ex.cost.abs());
        prop_assert!((d.cost - ex.cost).abs() < tol, "dp {} vs ex {}", d.cost, ex.cost);
        prop_assert!((b.cost - ex.cost).abs() < tol, "bnb {} vs ex {}", b.cost, ex.cost);
    }

    #[test]
    fn linearized_objective_matches_eq16_for_any_boundaries(
        fm in fm_strategy(9),
        bits in proptest::collection::vec(any::<bool>(), 9),
    ) {
        let n = fm.n_blocks();
        let mut p: Vec<bool> = bits.into_iter().take(n).collect();
        p.resize(n, false);
        p[n - 1] = true;
        let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
        let model = bip::BipModel::from_terms(&terms);
        let lin = model.objective_of_boundaries(&p);
        let lit = cost_of_boundaries(&p, &terms);
        prop_assert!(
            (lin - lit).abs() < 1e-6 * (1.0 + lit.abs()),
            "linearized {} vs literal {}", lin, lit
        );
    }

    #[test]
    fn optimal_cost_never_above_heuristic_layouts(fm in fm_strategy(12)) {
        let n = fm.n_blocks();
        let terms = BlockTerms::from_fm(&fm, &CostConstants::paper());
        let opt = dp::solve(&terms, &SolverConstraints::none());
        for k in 1..=n {
            let equi = casper_core::Segmentation::equi(n, k);
            let c = cost_of_segmentation(&equi, &terms);
            prop_assert!(
                opt.cost <= c + 1e-6 * (1.0 + c.abs()),
                "optimal {} beaten by equi-{k} {}", opt.cost, c
            );
        }
    }
}
