//! Compressed-execution equivalence suite.
//!
//! * Property tests: every codec-aware kernel (`count_eq`, `count_range`,
//!   `select_range_bitmap`, `sum_payload_range`) is bit-exact against
//!   `decode()` + the scalar baseline over arbitrary data, partitionings
//!   and `[lo, hi)` bounds — including empty, inverted and full-domain
//!   ranges.
//! * Chunk-level equivalence: a mixed-mode chunk (every partition under a
//!   different [`StorageMode`]) answers point/count/sum/select queries
//!   identically to its all-plain twin.
//! * Mode-transition regressions: encode → write (decode-on-write) →
//!   re-encode round-trips preserve values, zone maps and ghost-value
//!   accounting; partitions emptied by deletes keep working.
//! * The no-decode guarantee: `count_range` over a FoR-compressed 1M-value
//!   chunk never calls `decode()` (asserted on the per-thread decode
//!   counter).

use casper_storage::compress::telemetry;
use casper_storage::ghost::GhostPlan;
use casper_storage::kernels::Fragment;
use casper_storage::ops::PositionsConsumer;
use casper_storage::{
    BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk, StorageMode, ZoneMap,
};
use proptest::prelude::*;

const MODES: [StorageMode; 3] = [StorageMode::For, StorageMode::Dict, StorageMode::Rle];

fn tiny_layout() -> BlockLayout {
    BlockLayout {
        block_bytes: 16,
        value_width: 8,
    } // 2 values per block
}

/// Carve `n_blocks` into partition sizes driven by an arbitrary byte seed.
fn sizes_from_seed(n_blocks: usize, seed: &[u8]) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut left = n_blocks;
    let mut i = 0usize;
    while left > 0 {
        let s = (seed.get(i).copied().unwrap_or(1) as usize % 3 + 1).min(left);
        sizes.push(s);
        left -= s;
        i += 1;
    }
    sizes
}

/// Build an uncompressed chunk plus a twin whose partitions cycle through
/// the three codecs.
fn plain_and_mixed(
    values: &[u64],
    payload: &[u32],
    seed: &[u8],
) -> (PartitionedChunk<u64>, PartitionedChunk<u64>) {
    let layout = tiny_layout();
    let n_blocks = layout.num_blocks(values.len());
    let sizes = sizes_from_seed(n_blocks, seed);
    let spec = PartitionSpec::from_block_sizes(&sizes);
    let ghosts: Vec<usize> = (0..sizes.len()).map(|p| p % 2).collect();
    let plain = PartitionedChunk::build_with_payloads(
        values.to_vec(),
        vec![payload.to_vec()],
        &spec,
        layout,
        &GhostPlan::from_counts(ghosts),
        ChunkConfig::default(),
    )
    .expect("build");
    let mut mixed = plain.clone();
    for p in 0..mixed.partition_count() {
        let mode = MODES[p % MODES.len()];
        mixed.compress_partition(p, mode);
    }
    mixed.validate_invariants().expect("fragments consistent");
    (plain, mixed)
}

// ---------------------------------------------------------------------
// Fragment-level property tests: kernels vs decode() + scalar baseline
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_fragment_kernels_match_decode_then_scalar(
        vals in proptest::collection::vec(0u64..2000, 0..250),
        payload in proptest::collection::vec(any::<u32>(), 0..250),
        lo in 0u64..2200,
        hi in 0u64..2200,
    ) {
        let payload: Vec<u32> = (0..vals.len())
            .map(|i| payload.get(i).copied().unwrap_or(7))
            .collect();
        for mode in MODES {
            let frag = Fragment::encode(mode, &vals).expect("compressed mode");
            // The baseline: decode, then scan the decoded values with the
            // plain scalar predicate.
            let decoded = frag.decode();
            let want_count = decoded.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
            prop_assert_eq!(frag.count_range(lo, hi), want_count, "{:?} count", mode);

            let mut mask = Vec::new();
            let matched = frag.select_range_bitmap(lo, hi, &mut mask);
            prop_assert_eq!(matched, want_count, "{:?} bitmap count", mode);
            prop_assert_eq!(mask.len(), vals.len().div_ceil(64), "{:?} bitmap width", mode);
            for (i, &x) in decoded.iter().enumerate() {
                let bit = (mask[i / 64] >> (i % 64)) & 1;
                prop_assert_eq!(bit == 1, lo <= x && x < hi, "{:?} bit {}", mode, i);
            }

            // Payload aligned to the encoded order.
            let enc_payload: Vec<u32> = if frag.preserves_slot_order() {
                payload.clone()
            } else {
                let mut perm: Vec<u32> = (0..vals.len() as u32).collect();
                perm.sort_by_key(|&i| vals[i as usize]);
                perm.iter().map(|&i| payload[i as usize]).collect()
            };
            let (m, s) = frag.sum_payload_range(&enc_payload, lo, hi);
            let want_sum: u64 = decoded
                .iter()
                .zip(&enc_payload)
                .filter(|(&k, _)| lo <= k && k < hi)
                .map(|(_, &p)| u64::from(p))
                .sum();
            prop_assert_eq!((m, s), (want_count, want_sum), "{:?} fused sum", mode);
        }
    }

    #[test]
    fn prop_fragment_count_eq_matches_decode(
        vals in proptest::collection::vec(0u64..300, 0..200),
        probe in 0u64..350,
    ) {
        for mode in MODES {
            let frag = Fragment::encode(mode, &vals).expect("compressed mode");
            let want = frag.decode().iter().filter(|&&x| x == probe).count() as u64;
            prop_assert_eq!(frag.count_eq(probe), want, "{:?}", mode);
        }
    }

    #[test]
    fn prop_degenerate_and_full_ranges(
        vals in proptest::collection::vec(any::<u64>(), 1..100),
        bound in any::<u64>(),
    ) {
        for mode in MODES {
            let frag = Fragment::encode(mode, &vals).expect("compressed mode");
            // lo >= hi is empty for every codec.
            prop_assert_eq!(frag.count_range(bound, bound), 0, "{:?} equal", mode);
            prop_assert_eq!(
                frag.count_range(bound, bound.wrapping_sub(1).min(bound)), 0,
                "{:?} inverted", mode
            );
            // The full domain counts everything except u64::MAX values.
            let below_max = vals.iter().filter(|&&v| v < u64::MAX).count() as u64;
            prop_assert_eq!(frag.count_range(0, u64::MAX), below_max, "{:?} full", mode);
        }
    }

    // -----------------------------------------------------------------
    // Chunk-level equivalence over arbitrary data and partitionings
    // -----------------------------------------------------------------

    #[test]
    fn prop_mixed_mode_chunk_matches_plain_twin(
        vals in proptest::collection::vec(0u64..500, 1..200),
        seed in proptest::collection::vec(any::<u8>(), 1..32),
        lo in 0u64..550,
        hi in 0u64..550,
        probe in 0u64..550,
    ) {
        let payload: Vec<u32> = (0..vals.len() as u32).map(|i| i * 3 + 1).collect();
        let (plain, mixed) = plain_and_mixed(&vals, &payload, &seed);

        let a = plain.point_query(probe);
        let b = mixed.point_query(probe);
        prop_assert_eq!(&a.positions, &b.positions, "point({})", probe);

        prop_assert_eq!(
            plain.range_count(lo, hi).0,
            mixed.range_count(lo, hi).0,
            "count [{},{})", lo, hi
        );
        prop_assert_eq!(
            plain.range_sum_payload(lo, hi, &[0]).0,
            mixed.range_sum_payload(lo, hi, &[0]).0,
            "sum [{},{})", lo, hi
        );

        let mut pa = PositionsConsumer::default();
        let mut pb = PositionsConsumer::default();
        let ra = plain.range_query(lo, hi, &mut pa);
        let rb = mixed.range_query(lo, hi, &mut pb);
        prop_assert_eq!(ra.matched, rb.matched);
        prop_assert_eq!(pa.positions, pb.positions, "positions [{},{})", lo, hi);
        prop_assert_eq!(pa.runs, pb.runs, "runs [{},{})", lo, hi);
    }
}

// ---------------------------------------------------------------------
// Mode-transition regressions (decode-on-write round trips)
// ---------------------------------------------------------------------

fn build_chunk(values: Vec<u64>, sizes: &[usize], ghosts: &[usize]) -> PartitionedChunk<u64> {
    PartitionedChunk::build(
        values,
        &PartitionSpec::from_block_sizes(sizes),
        tiny_layout(),
        &GhostPlan::from_counts(ghosts.to_vec()),
        ChunkConfig::default(),
    )
    .expect("build")
}

fn live_multiset(c: &PartitionedChunk<u64>) -> Vec<u64> {
    let mut v: Vec<u64> = (0..c.partition_count())
        .flat_map(|p| c.partition_values(p).to_vec())
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn encode_write_reencode_round_trip() {
    for mode in MODES {
        let mut c = build_chunk(
            (1..=32).map(|x| x * 10).collect(),
            &[4, 4, 4, 4],
            &[1, 1, 1, 1],
        );
        let before_values = live_multiset(&c);
        let before_zones: Vec<ZoneMap<u64>> = c.zones().to_vec();
        let before_ghosts = c.ghost_total();
        for p in 0..c.partition_count() {
            c.compress_partition(p, mode);
        }
        c.validate_invariants().expect("compressed invariants");
        assert_eq!(live_multiset(&c), before_values, "{mode:?} encode");
        assert_eq!(c.zones(), &before_zones[..], "{mode:?} zones after encode");
        assert_eq!(
            c.ghost_total(),
            before_ghosts,
            "{mode:?} ghosts after encode"
        );

        // Writes hit compressed partitions: decode-on-write must revert
        // them and keep every invariant.
        c.insert(85, &[]).expect("insert");
        assert_eq!(
            c.partition_mode(c.point_query(85).partition),
            StorageMode::Plain
        );
        let deleted = c.delete(100).affected;
        assert_eq!(deleted, 1, "{mode:?}");
        let updated = c.update(310, 15).expect("update").affected;
        assert_eq!(updated, 1, "{mode:?}");
        c.validate_invariants().expect("after writes");

        let mut expect = before_values.clone();
        expect.push(85);
        expect.retain(|&v| v != 100); // one 100 deleted (values unique)
        let idx = expect.iter().position(|&v| v == 310).expect("310 exists");
        expect[idx] = 15;
        expect.sort_unstable();
        assert_eq!(live_multiset(&c), expect, "{mode:?} after writes");

        // Re-encode everything: values, zones and ghost accounting must
        // round-trip through the plain interlude.
        let zones_plain: Vec<ZoneMap<u64>> = c.zones().to_vec();
        let ghosts_plain = c.ghost_total();
        for p in 0..c.partition_count() {
            c.compress_partition(p, mode);
        }
        c.validate_invariants().expect("re-encoded invariants");
        assert_eq!(live_multiset(&c), expect, "{mode:?} re-encode values");
        assert_eq!(c.zones(), &zones_plain[..], "{mode:?} re-encode zones");
        assert_eq!(c.ghost_total(), ghosts_plain, "{mode:?} re-encode ghosts");
    }
}

#[test]
fn ripple_through_compressed_partitions_invalidates_them() {
    // No local ghosts: an insert into partition 0 must pull the slot from
    // the far donor, rippling through the compressed middle partitions.
    let mut c = build_chunk((1..=16).collect(), &[2, 2, 2, 2], &[0, 0, 0, 3]);
    for p in 0..4 {
        c.compress_partition(p, StorageMode::For);
    }
    c.insert(2, &[]).expect("insert");
    c.validate_invariants().expect("after ripple");
    // Every partition the ripple crossed dropped its fragment.
    assert!(c.storage_modes().iter().all(|m| *m == StorageMode::Plain));
    assert_eq!(c.point_query(2).positions.len(), 2);
}

#[test]
fn partition_emptied_by_deletes_stays_consistent() {
    let mut c = build_chunk((1..=16).collect(), &[4, 4], &[0, 0]);
    c.compress_partition(0, StorageMode::Dict);
    c.compress_partition(1, StorageMode::For);
    // Empty partition 0 (values 1..=8) entirely.
    for v in 1..=8u64 {
        assert_eq!(c.delete(v).affected, 1);
    }
    assert_eq!(c.partitions()[0].len, 0);
    assert!(c.zones()[0].is_empty());
    c.validate_invariants().expect("emptied partition");
    // The emptied partition re-compresses as an empty fragment and keeps
    // answering queries.
    c.compress_partition(0, StorageMode::Rle);
    c.validate_invariants().expect("empty fragment");
    assert_eq!(c.range_count(0, 100).0, 8);
    assert!(c.point_query(3).positions.is_empty());
    // And accepts new values again via decode-on-write.
    c.insert(4, &[]).expect("insert into emptied partition");
    assert_eq!(c.point_query(4).positions.len(), 1);
    c.validate_invariants().expect("refilled partition");
}

// ---------------------------------------------------------------------
// The no-decode guarantee and compressed cost accounting
// ---------------------------------------------------------------------

#[test]
fn count_range_over_for_compressed_1m_chunk_never_decodes() {
    let n = 1_000_000usize;
    // Narrow per-partition spans: the §6.2 setting where FoR pays off.
    let values: Vec<u64> = (0..n as u64)
        .map(|i| 5_000_000 + (i.wrapping_mul(2_654_435_761)) % 60_000)
        .collect();
    let layout = BlockLayout::new::<u64>(4096);
    let spec = PartitionSpec::equi_width(layout.num_blocks(n), 64);
    let mut chunk = PartitionedChunk::build(
        values,
        &spec,
        layout,
        &GhostPlan::none(spec.partition_count()),
        ChunkConfig::default(),
    )
    .expect("build");
    for p in 0..chunk.partition_count() {
        chunk.compress_partition(p, StorageMode::For);
    }
    assert!(chunk.storage_modes().iter().all(|m| *m == StorageMode::For));

    let before = telemetry::decode_count();
    let (count, _) = chunk.range_count(5_010_000, 5_040_000);
    assert_eq!(
        telemetry::decode_count(),
        before,
        "compressed count_range must not decode"
    );
    // Bit-exact against the scalar baseline (which scans the plain slots).
    let (want, _) = chunk.range_count_scalar(5_010_000, 5_040_000);
    assert_eq!(count, want);
    assert!(count > 0, "probe range should match something");
}

#[test]
fn compressed_scan_cost_reflects_encoded_bytes() {
    // 256 values over a 256-wide domain: u8 offsets → 8x fewer bytes.
    let values: Vec<u64> = (0..256u64).map(|i| 1000 + i).collect();
    let layout = BlockLayout::new::<u64>(128); // 16 values per block
    let spec = PartitionSpec::equi_width(layout.num_blocks(values.len()), 2);
    let mut chunk = PartitionedChunk::build(
        values,
        &spec,
        layout,
        &GhostPlan::none(2),
        ChunkConfig::default(),
    )
    .expect("build");
    // A range clipping both partitions forces the filtered path everywhere.
    let (_, plain_cost) = chunk.range_count(1001, 1255);
    chunk.compress_partition(0, StorageMode::For);
    chunk.compress_partition(1, StorageMode::For);
    let (n, compressed_cost) = chunk.range_count(1001, 1255);
    assert_eq!(n, 254);
    assert!(
        compressed_cost.seq_reads < plain_cost.seq_reads,
        "compressed scan should stream fewer blocks: {compressed_cost:?} vs {plain_cost:?}"
    );
}
