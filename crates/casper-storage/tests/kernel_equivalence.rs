//! Property tests: the branchless kernel read paths (with zone-map
//! pruning) must return results identical to the retained scalar reference
//! paths, over arbitrary partitionings, ghost plans and write histories —
//! and their `OpCost` must stay within the scalar path's block-access
//! envelope (pruning may only ever remove block accesses, and an unpruned
//! scan must charge exactly what the scalar scan charges).

use casper_storage::ghost::GhostPlan;
use casper_storage::ops::PositionsConsumer;
use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk, UpdatePolicy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64),
    Delete(u64),
    Update(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..600).prop_map(Op::Insert),
        (0u64..600).prop_map(Op::Delete),
        (0u64..600, 0u64..600).prop_map(|(a, b)| Op::Update(a, b)),
    ]
}

fn build_chunk(
    initial: Vec<u64>,
    sizes: Vec<usize>,
    ghosts: Vec<usize>,
    policy: UpdatePolicy,
    ops: Vec<Op>,
) -> PartitionedChunk<u64> {
    let layout = BlockLayout {
        block_bytes: 32,
        value_width: 8,
    }; // 4 values per block
    let n_blocks = layout.num_blocks(initial.len());
    let mut block_sizes = Vec::new();
    let mut left = n_blocks;
    for &s in &sizes {
        if left == 0 {
            break;
        }
        let take = s.clamp(1, left);
        block_sizes.push(take);
        left -= take;
    }
    if left > 0 {
        block_sizes.push(left);
    }
    let spec = PartitionSpec::from_block_sizes(&block_sizes);
    let k = spec.partition_count();
    let plan = GhostPlan::from_counts(
        (0..k)
            .map(|i| {
                if policy == UpdatePolicy::Ghost {
                    ghosts.get(i).copied().unwrap_or(0) % 4
                } else {
                    0
                }
            })
            .collect(),
    );
    let payloads: Vec<Vec<u32>> = vec![initial.iter().map(|&k| (k % 251) as u32).collect()];
    let mut chunk = PartitionedChunk::build_with_payloads(
        initial,
        payloads,
        &spec,
        layout,
        &plan,
        ChunkConfig {
            policy,
            capacity_slack: 1.0,
            ghost_fetch_block: 2,
        },
    )
    .expect("build");
    for op in ops {
        match op {
            Op::Insert(v) => {
                let _ = chunk.insert(v, &[(v % 251) as u32]);
            }
            Op::Delete(v) => {
                let _ = chunk.delete(v);
            }
            Op::Update(a, b) => {
                let _ = chunk.update(a, b);
            }
        }
    }
    chunk
        .validate_invariants()
        .expect("invariants (incl. zone covering) after the write history");
    chunk
}

fn check_equivalence(chunk: &PartitionedChunk<u64>, probes: &[u64]) -> Result<(), TestCaseError> {
    for &v in probes {
        // Point query: identical positions; cost never exceeds scalar, and
        // matches scalar exactly when the zone could not prune.
        let kern = chunk.point_query(v);
        let scal = chunk.point_query_scalar(v);
        prop_assert_eq!(&kern.positions, &scal.positions, "point({})", v);
        prop_assert_eq!(kern.partition, scal.partition);
        let kb = kern.cost.total_block_accesses();
        let sb = scal.cost.total_block_accesses();
        prop_assert!(kb <= sb, "point({}) kernel cost {} > scalar {}", v, kb, sb);
        if chunk.zones()[kern.partition].contains(v) && chunk.partitions()[kern.partition].len > 0 {
            prop_assert_eq!(kern.cost, scal.cost, "unpruned point({}) cost drifted", v);
        }
    }
    for w in probes.windows(2) {
        let (lo, hi) = (w[0].min(w[1]), w[0].max(w[1]));
        // Count: same result, no more block accesses than scalar.
        let (nk, ck) = chunk.range_count(lo, hi);
        let (ns, cs) = chunk.range_count_scalar(lo, hi);
        prop_assert_eq!(nk, ns, "count[{}, {})", lo, hi);
        prop_assert!(ck.total_block_accesses() <= cs.total_block_accesses());

        // Positions: kernel consumer output (runs + positions) must cover
        // exactly the scalar qualifying multiset of slots.
        let mut pk = PositionsConsumer::default();
        let rk = chunk.range_query(lo, hi, &mut pk);
        let mut ps = PositionsConsumer::default();
        let rs = chunk.range_query_scalar(lo, hi, &mut ps);
        prop_assert_eq!(rk.matched, rs.matched);
        let mut slots_k: Vec<usize> = pk.positions.clone();
        slots_k.extend(pk.runs.iter().flat_map(|r| r.clone()));
        slots_k.sort_unstable();
        let mut slots_s: Vec<usize> = ps.positions.clone();
        slots_s.extend(ps.runs.iter().flat_map(|r| r.clone()));
        slots_s.sort_unstable();
        prop_assert_eq!(slots_k, slots_s, "select[{}, {})", lo, hi);

        // Payload sum: bitmap-masked aggregation equals scalar gather.
        let (sum_k, _) = chunk.range_sum_payload(lo, hi, &[0]);
        let (sum_s, _) = chunk.range_sum_payload_scalar(lo, hi, &[0]);
        prop_assert_eq!(sum_k, sum_s, "sum[{}, {})", lo, hi);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernels_match_scalar_ghost_policy(
        initial in proptest::collection::vec(0u64..500, 8..150),
        sizes in proptest::collection::vec(1usize..6, 1..8),
        ghosts in proptest::collection::vec(0usize..4, 0..8),
        ops in proptest::collection::vec(op_strategy(), 0..60),
        probes in proptest::collection::vec(0u64..620, 2..40),
    ) {
        let chunk = build_chunk(initial, sizes, ghosts, UpdatePolicy::Ghost, ops);
        check_equivalence(&chunk, &probes)?;
    }

    #[test]
    fn kernels_match_scalar_dense_policy(
        initial in proptest::collection::vec(0u64..500, 8..150),
        sizes in proptest::collection::vec(1usize..6, 1..8),
        ops in proptest::collection::vec(op_strategy(), 0..60),
        probes in proptest::collection::vec(0u64..620, 2..40),
    ) {
        let chunk = build_chunk(initial, sizes, vec![], UpdatePolicy::Dense, ops);
        check_equivalence(&chunk, &probes)?;
    }

    #[test]
    fn zone_maps_stay_tight_under_boundary_deletes(
        initial in proptest::collection::vec(0u64..200, 16..80),
        deletes in proptest::collection::vec(0u64..200, 1..40),
    ) {
        let mut chunk = build_chunk(initial, vec![2, 2], vec![1, 1], UpdatePolicy::Ghost, vec![]);
        for v in deletes {
            chunk.delete(v);
            // After every delete, each zone must be exactly the min/max of
            // the partition's live values (tightness, not just covering —
            // this is what makes pruning effective).
            for (p, zone) in chunk.zones().iter().enumerate() {
                let live = chunk.partition_values(p);
                if live.is_empty() {
                    prop_assert!(zone.is_empty(), "partition {} empty but zone {:?}", p, zone);
                } else {
                    prop_assert_eq!(zone.min, *live.iter().min().expect("non-empty"));
                    prop_assert_eq!(zone.max, *live.iter().max().expect("non-empty"));
                }
            }
        }
        chunk.validate_invariants().expect("invariants");
    }
}
