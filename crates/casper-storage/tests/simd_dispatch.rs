//! SIMD-vs-scalar bit-exactness: every dispatched kernel × lane width
//! (u8/u16/u32/u64) must agree with the portable fallback on arbitrary
//! data, arbitrary windows, unaligned lane starts, and ragged tails.
//!
//! On an AVX-512/AVX2 host this pits the intrinsic backends against the
//! portable loops; on anything else both sides run portable and the tests
//! degenerate to self-consistency (still useful: they pin the reference
//! semantics). The forced-fallback env override is covered separately in
//! `tests/forced_scalar.rs` (its own process, since the dispatch level is
//! latched once).

use casper_storage::kernels;
use casper_storage::simd::{self, portable, SimdElem};
use casper_storage::value::ColumnValue;
use proptest::prelude::*;

/// Compare every dispatched kernel against portable on one (lane, window)
/// case. `offset` shifts the lane start so vector loads hit unaligned
/// addresses; tail raggedness comes from the arbitrary length.
fn check_width<T: SimdElem>(vals: &[T], offset: usize, lo: T, span_seed: u64, eq: T) {
    let lane = &vals[offset.min(vals.len())..];
    // Clamp the window into the SIMD contract: span >= 1, lo + span <= 2^BITS.
    let max_span = (1u128 << T::BITS) - u128::from(lo.widen());
    let span = T::narrow(((u128::from(span_seed) % max_span) as u64).max(1));

    assert_eq!(
        T::count_window(lane, lo, span),
        portable::count_window(lane, lo, span),
        "count_window u{} len={} off={offset} lo={lo} span={span}",
        T::BITS,
        lane.len(),
    );
    assert_eq!(
        T::count_eq(lane, eq),
        portable::count_eq(lane, eq),
        "count_eq u{}",
        T::BITS
    );
    let (mut got, mut want) = (Vec::new(), Vec::new());
    let gm = T::bitmap_window(lane, lo, span, &mut got);
    let wm = portable::bitmap_window(lane, lo, span, &mut want);
    assert_eq!(gm, wm, "bitmap_window count u{}", T::BITS);
    assert_eq!(got, want, "bitmap_window words u{}", T::BITS);

    let payload: Vec<u32> = (0..lane.len() as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    assert_eq!(
        T::sum_window(lane, &payload, lo, span),
        portable::sum_window(lane, &payload, lo, span),
        "sum_window u{}",
        T::BITS
    );

    for flip in [T::narrow(0), T::narrow(1u64 << (T::BITS - 1))] {
        let got = T::min_max_flipped(lane, flip);
        let want = if lane.is_empty() {
            None
        } else {
            Some(portable::min_max_flipped(lane, flip))
        };
        assert_eq!(got, want, "min_max_flipped u{} flip={flip}", T::BITS);
    }

    // Masked payload sum consumes the bitmap the kernels produced.
    assert_eq!(
        simd::sum_payload_masked(&payload, &got_mask_for(lane, lo, span)),
        reference_masked_sum(lane, &payload, lo, span),
        "sum_payload_masked u{}",
        T::BITS
    );

    // Compress-store equality collect: positions, order and count must all
    // match the portable twin (and the naive filter).
    let (mut got_pos, mut want_pos) = (Vec::new(), Vec::new());
    let gm = T::select_eq_positions(lane, eq, 17, &mut got_pos);
    let wm = portable::select_eq_positions(lane, eq, 17, &mut want_pos);
    assert_eq!(gm, wm, "select_eq_positions count u{}", T::BITS);
    assert_eq!(got_pos, want_pos, "select_eq_positions u{}", T::BITS);
    let naive: Vec<u32> = lane
        .iter()
        .enumerate()
        .filter(|(_, &x)| x == eq)
        .map(|(i, _)| 17 + i as u32)
        .collect();
    assert_eq!(got_pos, naive, "select_eq_positions vs naive u{}", T::BITS);
}

fn got_mask_for<T: SimdElem>(lane: &[T], lo: T, span: T) -> Vec<u64> {
    let mut mask = Vec::new();
    T::bitmap_window(lane, lo, span, &mut mask);
    mask
}

fn reference_masked_sum<T: SimdElem>(lane: &[T], payload: &[u32], lo: T, span: T) -> u64 {
    lane.iter()
        .zip(payload)
        .filter(|(&x, _)| x.wsub(lo) < span)
        .map(|(_, &p)| u64::from(p))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u8_kernels_bit_exact(
        vals in proptest::collection::vec(any::<u8>(), 0..700),
        offset in 0usize..9,
        lo in any::<u8>(),
        span_seed in any::<u64>(),
        eq in any::<u8>(),
    ) {
        check_width::<u8>(&vals, offset, lo, span_seed, eq);
    }

    #[test]
    fn u16_kernels_bit_exact(
        vals in proptest::collection::vec(any::<u16>(), 0..700),
        offset in 0usize..9,
        lo in any::<u16>(),
        span_seed in any::<u64>(),
        eq in any::<u16>(),
    ) {
        check_width::<u16>(&vals, offset, lo, span_seed, eq);
    }

    #[test]
    fn u32_kernels_bit_exact(
        vals in proptest::collection::vec(any::<u32>(), 0..700),
        offset in 0usize..9,
        lo in any::<u32>(),
        span_seed in any::<u64>(),
        eq in any::<u32>(),
    ) {
        check_width::<u32>(&vals, offset, lo, span_seed, eq);
    }

    #[test]
    fn u64_kernels_bit_exact(
        vals in proptest::collection::vec(any::<u64>(), 0..700),
        offset in 0usize..9,
        lo in any::<u64>(),
        span_seed in any::<u64>(),
        eq in any::<u64>(),
    ) {
        check_width::<u64>(&vals, offset, lo, span_seed, eq);
    }

    #[test]
    fn plain_kernels_match_naive_reference_i64(
        vals in proptest::collection::vec(any::<i64>(), 0..600),
        lo in any::<i64>(),
        hi in any::<i64>(),
        eq in any::<i64>(),
    ) {
        check_plain(&vals, lo, hi, eq)?;
    }

    #[test]
    fn plain_kernels_match_naive_reference_i32(
        vals in proptest::collection::vec(any::<i32>(), 0..600),
        lo in any::<i32>(),
        hi in any::<i32>(),
        eq in any::<i32>(),
    ) {
        check_plain(&vals, lo, hi, eq)?;
    }

    #[test]
    fn plain_kernels_match_naive_reference_u16(
        vals in proptest::collection::vec(any::<u16>(), 0..600),
        lo in any::<u16>(),
        hi in any::<u16>(),
        eq in any::<u16>(),
    ) {
        check_plain(&vals, lo, hi, eq)?;
    }
}

/// The typed plain kernels (routing through raw-bits lanes) against a
/// naive per-element reference — the signed/unsigned ordered-mapping
/// bridge is what's under test here.
fn check_plain<K: ColumnValue>(
    vals: &[K],
    lo: K,
    hi: K,
    eq: K,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let naive_count = vals.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
    prop_assert_eq!(kernels::count_range(vals, lo, hi), naive_count);
    prop_assert_eq!(
        kernels::count_eq(vals, eq),
        vals.iter().filter(|&&x| x == eq).count() as u64
    );
    let mut mask = Vec::new();
    let matched = kernels::select_range_bitmap(vals, lo, hi, &mut mask);
    prop_assert_eq!(matched, naive_count);
    prop_assert_eq!(mask.len(), vals.len().div_ceil(64));
    for (i, &x) in vals.iter().enumerate() {
        let bit = (mask[i / 64] >> (i % 64)) & 1;
        prop_assert_eq!(bit == 1, lo <= x && x < hi, "bit {}", i);
    }
    let payload: Vec<u32> = (0..vals.len() as u32).collect();
    let (m, s) = kernels::sum_payload_range(vals, &payload, lo, hi);
    let want_s: u64 = vals
        .iter()
        .zip(&payload)
        .filter(|(&x, _)| lo <= x && x < hi)
        .map(|(_, &p)| u64::from(p))
        .sum();
    prop_assert_eq!((m, s), (naive_count, want_s));
    prop_assert_eq!(
        kernels::min_max(vals),
        vals.iter()
            .copied()
            .min()
            .map(|mn| (mn, vals.iter().copied().max().unwrap()))
    );
    Ok(())
}

#[test]
fn boundary_values_and_exact_lane_multiples() {
    // Deterministic corner cases the generators may miss: extrema at every
    // position class, lengths exactly on and around the 64-element blocks.
    for len in [0usize, 1, 63, 64, 65, 127, 128, 129, 191, 256] {
        let vals: Vec<u64> = (0..len as u64)
            .map(|i| match i % 5 {
                0 => u64::MIN,
                1 => u64::MAX,
                2 => i,
                3 => u64::MAX - i,
                _ => 1u64 << (i % 63),
            })
            .collect();
        check_width::<u64>(&vals, 0, u64::MAX - 5, u64::MAX, u64::MAX);
        check_width::<u64>(&vals, 0, 0, 1, 0);
        let signed: Vec<i64> = vals.iter().map(|&v| v as i64).collect();
        check_plain(&signed, i64::MIN, i64::MAX, -1).unwrap();
        check_plain(&signed, -5, 5, 0).unwrap();
    }
}

#[test]
fn select_eq_dense_and_sparse_words() {
    // The compress-store collect must handle an all-match word (dense: all
    // four mask quarters full), a single-bit word, and an empty tail —
    // exactly the cases where a miscounted store cursor would corrupt
    // neighbouring positions.
    for len in [64usize, 65, 128, 200] {
        let vals = vec![42u8; len];
        let mut out = Vec::new();
        let n = u8::select_eq_positions(&vals, 42, 0, &mut out);
        assert_eq!(n as usize, len);
        assert_eq!(out, (0..len as u32).collect::<Vec<_>>(), "dense len {len}");
    }
    let mut vals = vec![0u16; 300];
    vals[63] = 7;
    vals[64] = 7;
    vals[299] = 7;
    let mut out = Vec::new();
    assert_eq!(u16::select_eq_positions(&vals, 7, 100, &mut out), 3);
    assert_eq!(out, vec![163, 164, 399]);
}

#[test]
fn full_domain_window_on_narrow_lanes() {
    // lo = 0, span = 2^BITS - 1 (the widest window the plain kernels can
    // express): everything except MAX matches.
    let vals: Vec<u8> = (0..=255u16).map(|v| v as u8).collect();
    assert_eq!(
        portable::count_window(&vals, 0u8, u8::MAX),
        u8::count_window(&vals, 0u8, u8::MAX)
    );
    assert_eq!(u8::count_window(&vals, 0u8, u8::MAX), 255);
}
