//! Forced-fallback path: `CASPER_FORCE_SCALAR=1` must pin the dispatch
//! level to `Scalar` regardless of host capabilities, and the kernels must
//! keep producing correct results through the portable loops.
//!
//! This lives in its own integration-test binary (= its own process)
//! because the dispatch level is latched in a `OnceLock` on first use: the
//! env var has to be set before any kernel call, and must not leak into
//! the other test binaries, which exercise the SIMD levels.

use casper_storage::kernels;
use casper_storage::simd::{self, SimdLevel};

#[test]
fn forced_scalar_env_pins_the_level_and_stays_correct() {
    // Set the override before the first `simd::level()` call in this
    // process. Integration tests in one binary share the process, so this
    // single #[test] does everything in order.
    std::env::set_var("CASPER_FORCE_SCALAR", "1");
    assert_eq!(simd::level(), SimdLevel::Scalar);

    // The full kernel surface still answers correctly via portable.
    let vals: Vec<u64> = (0..10_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let (lo, hi) = (1u64 << 30, 1u64 << 33);
    let naive = vals.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
    assert_eq!(kernels::count_range(&vals, lo, hi), naive);

    let mut mask = Vec::new();
    assert_eq!(
        kernels::select_range_bitmap(&vals, lo, hi, &mut mask),
        naive
    );
    assert_eq!(
        mask.iter().map(|w| u64::from(w.count_ones())).sum::<u64>(),
        naive
    );

    let payload: Vec<u32> = (0..vals.len() as u32).collect();
    let (m, s) = kernels::sum_payload_range(&vals, &payload, lo, hi);
    let want: u64 = vals
        .iter()
        .zip(&payload)
        .filter(|(&x, _)| lo <= x && x < hi)
        .map(|(_, &p)| u64::from(p))
        .sum();
    assert_eq!((m, s), (naive, want));

    assert_eq!(
        kernels::min_max(&vals),
        Some((*vals.iter().min().unwrap(), *vals.iter().max().unwrap()))
    );

    // Compressed lanes ride the same dispatch: a FoR fragment scans
    // scalar too and must agree with a decode + filter.
    let narrow: Vec<u64> = (0..5000u64).map(|i| 1000 + i % 200).collect();
    let frag = casper_storage::compress::ForBlock::encode(&narrow);
    let want = narrow
        .iter()
        .filter(|&&x| (1050..1100).contains(&x))
        .count() as u64;
    assert_eq!(
        casper_storage::kernels::compressed::for_count_range(&frag, 1050, 1100),
        want
    );
}
