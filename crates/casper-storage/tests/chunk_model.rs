//! Model-based property test: a `PartitionedChunk` under arbitrary
//! interleavings of the five operations must behave exactly like a plain
//! multiset, for both update policies, arbitrary partitionings and ghost
//! plans, while never violating its structural invariants.

use casper_storage::ghost::GhostPlan;
use casper_storage::{BlockLayout, ChunkConfig, PartitionSpec, PartitionedChunk, UpdatePolicy};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Action {
    Insert(u64),
    Delete(u64),
    Update(u64, u64),
    Point(u64),
    RangeCount(u64, u64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..500).prop_map(Action::Insert),
        (0u64..500).prop_map(Action::Delete),
        (0u64..500, 0u64..500).prop_map(|(a, b)| Action::Update(a, b)),
        (0u64..500).prop_map(Action::Point),
        (0u64..500, 0u64..500).prop_map(|(a, b)| Action::RangeCount(a.min(b), a.max(b))),
    ]
}

fn run_model(
    initial: Vec<u64>,
    sizes: Vec<usize>,
    ghosts: Vec<usize>,
    policy: UpdatePolicy,
    actions: Vec<Action>,
) -> Result<(), TestCaseError> {
    let layout = BlockLayout {
        block_bytes: 32,
        value_width: 8,
    }; // 4 values per block
    let n_blocks = layout.num_blocks(initial.len());
    // Re-scale the size vector to cover exactly n_blocks.
    let mut block_sizes = Vec::new();
    let mut left = n_blocks;
    for &s in &sizes {
        if left == 0 {
            break;
        }
        let take = s.clamp(1, left);
        block_sizes.push(take);
        left -= take;
    }
    if left > 0 {
        block_sizes.push(left);
    }
    let spec = PartitionSpec::from_block_sizes(&block_sizes);
    let k = spec.partition_count();
    let ghost_plan = GhostPlan::from_counts(
        (0..k)
            .map(|i| ghosts.get(i).copied().unwrap_or(0) % 4)
            .collect(),
    );
    let config = ChunkConfig {
        policy,
        capacity_slack: 1.0,
        ghost_fetch_block: 2,
    };
    let mut chunk = PartitionedChunk::build(initial.clone(), &spec, layout, &ghost_plan, config)
        .expect("build");
    let mut model: Vec<u64> = initial;

    for a in actions {
        match a {
            Action::Insert(v) => {
                if chunk.insert(v, &[]).is_ok() {
                    model.push(v);
                }
            }
            Action::Delete(v) => {
                let r = chunk.delete(v);
                let want = model.iter().filter(|&&x| x == v).count() as u64;
                prop_assert_eq!(r.affected, want, "delete({}) cardinality", v);
                model.retain(|&x| x != v);
            }
            Action::Update(old, new) => {
                let r = chunk.update(old, new).expect("update");
                let had = model.iter().position(|&x| x == old);
                match had {
                    Some(i) => {
                        prop_assert_eq!(r.affected, 1);
                        model[i] = new;
                    }
                    None => prop_assert_eq!(r.affected, 0),
                }
            }
            Action::Point(v) => {
                let got = chunk.point_query(v).positions.len();
                let want = model.iter().filter(|&&x| x == v).count();
                prop_assert_eq!(got, want, "point({})", v);
            }
            Action::RangeCount(lo, hi) => {
                let (got, _) = chunk.range_count(lo, hi);
                let want = model.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
                prop_assert_eq!(got, want, "range[{}, {})", lo, hi);
            }
        }
        if let Err(e) = chunk.validate_invariants() {
            return Err(TestCaseError::fail(format!("invariant violated: {e}")));
        }
    }
    // Final multiset equality.
    let (mut live, _) = chunk.extract_live_sorted();
    model.sort_unstable();
    live.sort_unstable();
    prop_assert_eq!(live, model);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunk_behaves_like_multiset_ghost_policy(
        initial in proptest::collection::vec(0u64..500, 8..120),
        sizes in proptest::collection::vec(1usize..6, 1..8),
        ghosts in proptest::collection::vec(0usize..4, 0..8),
        actions in proptest::collection::vec(action_strategy(), 1..60),
    ) {
        run_model(initial, sizes, ghosts, UpdatePolicy::Ghost, actions)?;
    }

    #[test]
    fn chunk_behaves_like_multiset_dense_policy(
        initial in proptest::collection::vec(0u64..500, 8..120),
        sizes in proptest::collection::vec(1usize..6, 1..8),
        actions in proptest::collection::vec(action_strategy(), 1..60),
    ) {
        run_model(initial, sizes, vec![], UpdatePolicy::Dense, actions)?;
    }

    #[test]
    fn dense_policy_keeps_zero_ghosts(
        initial in proptest::collection::vec(0u64..200, 8..60),
        actions in proptest::collection::vec(action_strategy(), 1..40),
    ) {
        let layout = BlockLayout { block_bytes: 32, value_width: 8 };
        let n = layout.num_blocks(initial.len());
        let spec = PartitionSpec::equi_width(n, 4.min(n));
        let mut chunk = PartitionedChunk::build(
            initial,
            &spec,
            layout,
            &GhostPlan::none(spec.partition_count()),
            ChunkConfig::dense(),
        ).expect("build");
        for a in actions {
            match a {
                Action::Insert(v) => { let _ = chunk.insert(v, &[]); }
                Action::Delete(v) => { let _ = chunk.delete(v); }
                Action::Update(a, b) => { let _ = chunk.update(a, b); }
                _ => {}
            }
            prop_assert_eq!(chunk.ghost_total(), 0, "dense chunks never hold ghosts");
        }
    }
}
