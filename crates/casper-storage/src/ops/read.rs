//! Read operations: point and range queries over a partitioned chunk (§3,
//! Fig. 3), executed through the branchless batch kernels of
//! [`crate::kernels`] with zone-map pruning.
//!
//! * A **point query** probes the shallow index for the one partition whose
//!   range may contain the value. The partition's zone map (tight live
//!   min/max) is consulted *before* any block is touched: a value outside
//!   the zone resolves from metadata alone. Otherwise the partition is
//!   scanned with the branchless [`crate::kernels::select_eq_into`] kernel
//!   (values are unordered within a partition, so the whole live region is
//!   examined — §4.4).
//! * A **range query** probes the index for the first and last overlapping
//!   partitions. Partitions whose zone does not intersect `[lo, hi)` are
//!   pruned; partitions whose zone lies fully inside are *blindly consumed*
//!   as whole runs (including first/last, which the covering bounds alone
//!   could not prove); the rest are *filtered* through the bitmap kernel
//!   [`crate::kernels::select_range_bitmap`].
//!
//! The pure-scalar reference paths live in [`crate::ops::scalar`]; property
//! tests assert result equivalence and the `scan_ops` bench tracks the
//! speedup.

use crate::chunk::PartitionedChunk;
use crate::kernels::{self, Fragment};
use crate::ops::OpCost;
use crate::value::ColumnValue;
use casper_obs::CounterDef;

// Fragment-hit and zone-map telemetry: which physical path served each
// partition touch, and how many partitions metadata pruned away entirely.
// Range scans touch hundreds of partitions per chunk, so the scan driver
// accumulates locally and flushes each counter once per chunk — a
// per-partition `inc()` costs microseconds on a full-table scan and blows
// the obs_overhead gate. Point queries touch one partition and inc directly.
static OBS_PLAIN_SCANS: CounterDef =
    CounterDef::new("casper_scan_partitions_total{path=\"plain\"}");
static OBS_COMPRESSED_SCANS: CounterDef =
    CounterDef::new("casper_scan_partitions_total{path=\"compressed\"}");
static OBS_ZONE_PRUNED: CounterDef = CounterDef::new("casper_zone_partitions_pruned_total");

/// Result of a point query.
#[derive(Debug, Clone, Default)]
pub struct PointQueryResult {
    /// Physical slot positions of the matching values.
    pub positions: Vec<usize>,
    /// Access pattern performed.
    pub cost: OpCost,
    /// Partition that was scanned.
    pub partition: usize,
}

/// Result of a range query.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeQueryResult {
    /// Access pattern performed.
    pub cost: OpCost,
    /// Number of qualifying values passed to the consumer.
    pub matched: u64,
}

/// Visitor receiving the qualifying rows of a range query.
///
/// The split between [`RangeConsumer::value`] and [`RangeConsumer::run`]
/// mirrors the paper's select-operator discussion: filtered partitions
/// produce individual positions, while the blindly-consumed middle
/// partitions "can simply be copied to the next query operator".
pub trait RangeConsumer<K: ColumnValue> {
    /// One qualifying value from a filtered (first/last) partition.
    fn value(&mut self, pos: usize, v: K);
    /// A contiguous run of qualifying slots from a middle partition.
    fn run(&mut self, range: std::ops::Range<usize>);
    /// Called once when the query finishes, so buffering consumers (e.g.
    /// position coalescers) can emit pending state. Default: no-op.
    fn flush(&mut self) {}
}

/// Counts qualifying rows (HAP Q2).
#[derive(Debug, Default)]
pub struct CountConsumer {
    /// Number of qualifying rows seen.
    pub count: u64,
}

impl<K: ColumnValue> RangeConsumer<K> for CountConsumer {
    #[inline]
    fn value(&mut self, _pos: usize, _v: K) {
        self.count += 1;
    }
    #[inline]
    fn run(&mut self, range: std::ops::Range<usize>) {
        self.count += range.len() as u64;
    }
}

/// Collects qualifying slot positions and runs (select returning positions).
///
/// Adjacent positions arriving from filtered partitions are coalesced into
/// runs, so a filtered partition whose qualifying rows happen to be
/// physically contiguous costs O(1) output instead of one entry per row.
/// Isolated positions still land in [`PositionsConsumer::positions`].
#[derive(Debug, Default)]
pub struct PositionsConsumer {
    /// Individual (non-adjacent) qualifying positions.
    pub positions: Vec<usize>,
    /// Qualifying runs: blind middle partitions plus coalesced adjacent
    /// positions from filtered partitions.
    pub runs: Vec<std::ops::Range<usize>>,
    pending: Option<std::ops::Range<usize>>,
}

impl PositionsConsumer {
    /// Total qualifying slots collected (positions plus run lengths).
    pub fn total(&self) -> usize {
        self.positions.len() + self.runs.iter().map(|r| r.len()).sum::<usize>()
    }

    fn flush_pending(&mut self) {
        if let Some(r) = self.pending.take() {
            if r.len() == 1 {
                self.positions.push(r.start);
            } else {
                self.runs.push(r);
            }
        }
    }
}

impl<K: ColumnValue> RangeConsumer<K> for PositionsConsumer {
    #[inline]
    fn value(&mut self, pos: usize, _v: K) {
        match &mut self.pending {
            Some(r) if r.end == pos => r.end = pos + 1,
            _ => {
                self.flush_pending();
                self.pending = Some(pos..pos + 1);
            }
        }
    }
    #[inline]
    fn run(&mut self, range: std::ops::Range<usize>) {
        self.flush_pending();
        self.runs.push(range);
    }
    fn flush(&mut self) {
        self.flush_pending();
    }
}

/// One partition surviving zone pruning in a range scan, as presented to
/// the visitor of `scan_range_partitions`.
enum RangePart<'a, K: ColumnValue> {
    /// Zone fully inside `[lo, hi)`: every live value qualifies.
    Blind(&'a crate::partition::PartitionMeta<K>),
    /// Zone partially overlapping: the live slice must be filtered. When
    /// the partition is compressed, its fragment rides along so the
    /// operation can scan the encoded lane instead of the slots (each
    /// operation decides — e.g. RLE fragments accelerate counts but not
    /// position-producing selects).
    Filtered {
        meta: &'a crate::partition::PartitionMeta<K>,
        live: &'a [K],
        frag: Option<&'a Fragment<K>>,
    },
}

/// Which representation a filtered-partition visit actually scanned, so
/// `scan_range_partitions` charges the bytes truly streamed.
enum ScanPath {
    /// Plain slots: whole live blocks.
    Plain,
    /// Encoded fragment: `encoded_bytes` worth of blocks.
    Encoded,
}

impl<K: ColumnValue> PartitionedChunk<K> {
    /// Point query: return the positions of all live values equal to `v`
    /// (Fig. 3b).
    ///
    /// Cost: the zone map answers out-of-zone probes from metadata alone
    /// (index probe only, no block access). In-zone probes pay the full
    /// partition scan — one random read for the first block, sequential
    /// reads for the rest — because there is "no further navigation
    /// structure within a block" (§4.4).
    pub fn point_query(&self, v: K) -> PointQueryResult {
        let mut cost = OpCost::default();
        let p = self.locate(v, &mut cost);
        let part = self.parts[p];
        let mut positions = Vec::new();
        if part.len > 0 && self.zones[p].contains(v) {
            // Compressed partitions whose codec preserves slot order answer
            // from the encoded lane (positions map 1:1 onto slots); RLE and
            // plain partitions scan the slots.
            let compressed = self.frags[p]
                .as_ref()
                .is_some_and(|frag| frag.select_eq_positions(v, part.start, &mut positions));
            if compressed {
                OBS_COMPRESSED_SCANS.inc();
                self.charge_compressed_scan(p, &mut cost);
            } else {
                kernels::select_eq_into(
                    &self.data[part.start..part.live_end()],
                    v,
                    part.start,
                    &mut positions,
                );
                OBS_PLAIN_SCANS.inc();
                self.charge_partition_scan(p, &mut cost);
            }
        } else {
            // Out-of-zone probe: answered from the zone map alone.
            OBS_ZONE_PRUNED.inc();
        }
        PointQueryResult {
            positions,
            cost,
            partition: p,
        }
    }

    /// Range query over the half-open interval `[lo, hi)` (Fig. 3c),
    /// streaming qualifying rows into `consumer`.
    pub fn range_query<C: RangeConsumer<K>>(
        &self,
        lo: K,
        hi: K,
        consumer: &mut C,
    ) -> RangeQueryResult {
        let mut cost = OpCost::default();
        let mut matched = 0u64;
        if hi <= lo {
            return RangeQueryResult { cost, matched };
        }
        let mut mask: Vec<u64> = Vec::new();
        self.scan_range_partitions(lo, hi, &mut cost, |part| match part {
            RangePart::Blind(meta) => {
                // Every live value qualifies: hand the whole run over.
                consumer.run(meta.start..meta.live_end());
                matched += meta.len as u64;
                ScanPath::Plain
            }
            RangePart::Filtered { meta, live, frag } => {
                mask.clear();
                // Positions must map onto slots, so only order-preserving
                // fragments can evaluate the predicate on the encoded lane.
                let path = match frag {
                    Some(f) if f.preserves_slot_order() => {
                        matched += f.select_range_bitmap(lo, hi, &mut mask);
                        ScanPath::Encoded
                    }
                    _ => {
                        // Branchless bitmap evaluation over the slots.
                        matched += kernels::select_range_bitmap(live, lo, hi, &mut mask);
                        ScanPath::Plain
                    }
                };
                kernels::for_each_match(live, &mask, meta.start, |pos, val| {
                    consumer.value(pos, val);
                });
                path
            }
        });
        consumer.flush();
        RangeQueryResult { cost, matched }
    }

    /// Convenience wrapper: count rows in `[lo, hi)` (HAP Q2).
    pub fn range_count(&self, lo: K, hi: K) -> (u64, OpCost) {
        let mut cost = OpCost::default();
        let mut count = 0u64;
        if hi <= lo {
            return (count, cost);
        }
        self.scan_range_partitions(lo, hi, &mut cost, |part| match part {
            RangePart::Blind(meta) => {
                count += meta.len as u64;
                ScanPath::Plain
            }
            // Pure count: no positions materialized at all. Every codec can
            // count on its encoded form (RLE by pure run arithmetic).
            RangePart::Filtered { live, frag, .. } => match frag {
                Some(f) => {
                    count += f.count_range(lo, hi);
                    ScanPath::Encoded
                }
                None => {
                    count += kernels::count_range(live, lo, hi);
                    ScanPath::Plain
                }
            },
        });
        (count, cost)
    }

    /// Convenience wrapper: sum the given payload columns over all rows in
    /// `[lo, hi)` (HAP Q3). Filtered partitions aggregate through the fused
    /// filter+sum kernel ([`kernels::sum_payload_range`], which also yields
    /// the qualifying-row count); blind partitions use the contiguous-run
    /// sum.
    pub fn range_sum_payload(&self, lo: K, hi: K, cols: &[usize]) -> (u64, OpCost) {
        let mut cost = OpCost::default();
        if hi <= lo {
            return (0, cost);
        }
        let mut sum = 0u64;
        let mut qualifying = 0usize;
        self.scan_range_partitions(lo, hi, &mut cost, |part| match part {
            RangePart::Blind(meta) => {
                sum += self.payloads.sum_range(cols, meta.start..meta.live_end());
                qualifying += meta.len;
                ScanPath::Plain
            }
            RangePart::Filtered { meta, live, frag } => {
                // Payload lanes are slot-aligned, so only order-preserving
                // fragments can drive the fused filter+sum from the encoded
                // key lane.
                let encoded = frag.filter(|f| f.preserves_slot_order());
                for (ci, &c) in cols.iter().enumerate() {
                    let payload = self.payloads.column_slice(c, meta.start..meta.live_end());
                    let (m, s) = match encoded {
                        Some(f) => f.sum_payload_range(payload, lo, hi),
                        None => kernels::sum_payload_range(live, payload, lo, hi),
                    };
                    sum += s;
                    // The fused pass already counted the matches; take the
                    // count once (every column sees the same key lane).
                    if ci == 0 {
                        qualifying += m as usize;
                    }
                }
                if encoded.is_some() {
                    ScanPath::Encoded
                } else {
                    ScanPath::Plain
                }
            }
        });
        // Payload reads are sequential over the qualifying blocks, one scan
        // per projected column.
        let vpb = self.layout.values_per_block().max(1);
        cost.seq_reads += (cols.len() * qualifying.div_ceil(vpb)) as u64;
        (sum, cost)
    }

    /// Shared driver for the range read paths: computes the partition span,
    /// prunes on zone maps, classifies each surviving partition blind vs
    /// filtered, and performs all block-cost accounting. The first
    /// partition actually read pays the random jump; everything after
    /// streams sequentially.
    fn scan_range_partitions(
        &self,
        lo: K,
        hi: K,
        cost: &mut OpCost,
        mut visit: impl FnMut(RangePart<'_, K>) -> ScanPath,
    ) {
        let (first, last) = self.range_partition_span(lo, hi, cost);
        let mut first_touch = true;
        // Telemetry accumulates in locals and flushes once per chunk scan:
        // a shared-counter add per partition is measurable on a full scan.
        let (mut plain, mut encoded, mut pruned) = (0u64, 0u64, 0u64);
        for p in first..=last {
            let part = &self.parts[p];
            let zone = self.zones[p];
            if part.len == 0 || !zone.intersects(lo, hi) {
                pruned += 1;
                continue; // zone-map pruning: no block of `p` is read
            }
            if zone.inside(lo, hi) {
                visit(RangePart::Blind(part));
                plain += 1;
                let blocks = self.live_blocks(p) as u64;
                if first_touch {
                    cost.random_reads += 1;
                    cost.seq_reads += blocks.saturating_sub(1);
                } else {
                    cost.seq_reads += blocks;
                }
                cost.values_scanned += part.len as u64;
            } else {
                match visit(RangePart::Filtered {
                    meta: part,
                    live: &self.data[part.start..part.live_end()],
                    frag: self.frags[p].as_ref(),
                }) {
                    ScanPath::Plain => {
                        plain += 1;
                        self.charge_partition_scan(p, cost);
                    }
                    ScanPath::Encoded => {
                        encoded += 1;
                        self.charge_compressed_scan(p, cost);
                    }
                }
            }
            first_touch = false;
        }
        if plain > 0 {
            OBS_PLAIN_SCANS.add(plain);
        }
        if encoded > 0 {
            OBS_COMPRESSED_SCANS.add(encoded);
        }
        if pruned > 0 {
            OBS_ZONE_PRUNED.add(pruned);
        }
    }

    /// First and last partition indices overlapping `[lo, hi)`. Charges the
    /// two shallow-index probes on `cost`.
    pub(crate) fn range_partition_span(&self, lo: K, hi: K, cost: &mut OpCost) -> (usize, usize) {
        let first = self.locate(lo, cost);
        // Last partition overlapping [lo, hi): the one responsible for the
        // largest value < hi.
        cost.index_probes += 1;
        let last = self
            .parts
            .iter()
            .enumerate()
            .take_while(|(_, p)| p.min < hi)
            .map(|(i, _)| i)
            .last()
            .unwrap_or(first)
            .max(first);
        (first, last)
    }

    /// Charge the cost of fully scanning partition `p`'s live region: one
    /// random read to reach it, sequential reads for its remaining blocks.
    pub(crate) fn charge_partition_scan(&self, p: usize, cost: &mut OpCost) {
        let blocks = self.live_blocks(p) as u64;
        if blocks > 0 {
            cost.random_reads += 1;
            cost.seq_reads += blocks - 1;
        } else {
            // Empty partition: the probe alone suffices, but charge the
            // random read the model predicts for the ideal case.
            cost.random_reads += 1;
        }
        cost.values_scanned += self.parts[p].len as u64;
    }

    /// Charge the cost of scanning partition `p`'s *encoded* fragment: one
    /// random read to reach it, then only as many sequential blocks as the
    /// encoded bytes actually span — the §6.2 "less overall data movement"
    /// reflected in the access pattern.
    pub(crate) fn charge_compressed_scan(&self, p: usize, cost: &mut OpCost) {
        let bytes = self.frags[p]
            .as_ref()
            .map_or(0, crate::kernels::Fragment::encoded_bytes);
        let blocks = bytes.div_ceil(self.layout.block_bytes).max(1) as u64;
        cost.random_reads += 1;
        cost.seq_reads += blocks - 1;
        cost.values_scanned += self.parts[p].len as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkConfig;
    use crate::ghost::GhostPlan;
    use crate::layout::{BlockLayout, PartitionSpec};

    fn tiny_layout() -> BlockLayout {
        BlockLayout {
            block_bytes: 16,
            value_width: 8,
        } // 2 values per block
    }

    fn chunk_1_to_16(sizes: &[usize]) -> PartitionedChunk<u64> {
        PartitionedChunk::build(
            (1..=16).collect(),
            &PartitionSpec::from_block_sizes(sizes),
            tiny_layout(),
            &GhostPlan::none(sizes.len()),
            ChunkConfig::default(),
        )
        .unwrap()
    }

    /// Even keys 2..=32 so the domain has gaps inside every zone.
    fn chunk_even_2_to_32(sizes: &[usize]) -> PartitionedChunk<u64> {
        PartitionedChunk::build(
            (1..=16).map(|x| x * 2).collect(),
            &PartitionSpec::from_block_sizes(sizes),
            tiny_layout(),
            &GhostPlan::none(sizes.len()),
            ChunkConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn point_query_finds_value() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        let r = c.point_query(7);
        assert_eq!(r.positions.len(), 1);
        assert_eq!(c.data[r.positions[0]], 7);
        assert_eq!(r.partition, 1); // values 5..8
    }

    #[test]
    fn point_query_out_of_zone_is_pruned() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        let r = c.point_query(100); // beyond every zone
        assert!(r.positions.is_empty());
        // The zone map resolved the miss from metadata: no blocks touched.
        assert_eq!(r.cost.values_scanned, 0);
        assert_eq!(r.cost.random_reads + r.cost.seq_reads, 0);
        assert_eq!(r.cost.index_probes, 1);
    }

    #[test]
    fn point_query_in_zone_miss_still_scans() {
        let c = chunk_even_2_to_32(&[2, 2, 2, 2]);
        // 9 is inside partition 1's zone [10..16]? No: zones are [2,8],
        // [10,16], [18,24], [26,32]. Query 11: in-zone gap value.
        let r = c.point_query(11);
        assert!(r.positions.is_empty());
        // Empty point queries inside the zone cost the same as hits (§4.4).
        assert!(r.cost.values_scanned > 0);
        assert!(r.cost.random_reads >= 1);
    }

    #[test]
    fn point_query_cost_scales_with_partition_size() {
        // One partition of 8 blocks vs eight partitions of 1 block.
        let big = chunk_1_to_16(&[8]);
        let small = chunk_1_to_16(&[1; 8]);
        let rb = big.point_query(3);
        let rs = small.point_query(3);
        assert_eq!(rb.cost.random_reads, 1);
        assert_eq!(rb.cost.seq_reads, 7);
        assert_eq!(rs.cost.random_reads, 1);
        assert_eq!(rs.cost.seq_reads, 0);
    }

    #[test]
    fn point_query_duplicates_all_found() {
        let c = PartitionedChunk::build(
            vec![5u64, 5, 5, 1, 2, 3, 9, 9],
            &PartitionSpec::from_block_sizes(&[2, 2]),
            tiny_layout(),
            &GhostPlan::none(2),
            ChunkConfig::default(),
        )
        .unwrap();
        let r = c.point_query(5);
        assert_eq!(r.positions.len(), 3);
    }

    #[test]
    fn range_count_exact() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        let (n, _) = c.range_count(3, 11);
        assert_eq!(n, 8); // 3..=10
        let (n, _) = c.range_count(1, 17);
        assert_eq!(n, 16);
        let (n, _) = c.range_count(8, 8);
        assert_eq!(n, 0);
        let (n, _) = c.range_count(16, 16000);
        assert_eq!(n, 1);
    }

    #[test]
    fn range_query_blind_middles_are_runs() {
        let c = chunk_1_to_16(&[1, 1, 1, 1, 1, 1, 1, 1]);
        let mut pc = PositionsConsumer::default();
        let r = c.range_query(2, 15, &mut pc);
        assert_eq!(r.matched, 13); // 2..=14
        assert!(!pc.runs.is_empty(), "middle partitions must arrive as runs");
        assert_eq!(pc.total(), 13);
    }

    #[test]
    fn range_query_single_partition_coalesces_adjacent_matches() {
        let c = chunk_1_to_16(&[8]);
        let mut pc = PositionsConsumer::default();
        let r = c.range_query(5, 9, &mut pc);
        assert_eq!(r.matched, 4);
        assert_eq!(pc.total(), 4);
        // The filtered partition's four adjacent matches coalesce into one
        // run instead of four scattered positions.
        assert_eq!(pc.runs.len(), 1);
        assert!(pc.positions.is_empty());
    }

    #[test]
    fn positions_consumer_keeps_isolated_positions() {
        let mut pc = PositionsConsumer::default();
        <PositionsConsumer as RangeConsumer<u64>>::value(&mut pc, 3, 0);
        <PositionsConsumer as RangeConsumer<u64>>::value(&mut pc, 7, 0);
        <PositionsConsumer as RangeConsumer<u64>>::value(&mut pc, 8, 0);
        <PositionsConsumer as RangeConsumer<u64>>::value(&mut pc, 9, 0);
        <PositionsConsumer as RangeConsumer<u64>>::flush(&mut pc);
        assert_eq!(pc.positions, vec![3]);
        assert_eq!(pc.runs, vec![7..10]);
        assert_eq!(pc.total(), 4);
    }

    #[test]
    fn range_cost_zone_blind_boundaries() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        // Covers all four partitions exactly. The zone maps prove even the
        // first and last partitions are fully inside, so all 8 blocks are
        // consumed blindly: one random jump, then sequential streaming.
        let (_, cost) = c.range_count(1, 17);
        assert_eq!(cost.random_reads, 1);
        assert_eq!(cost.seq_reads, 7);
        // A range that clips the boundary partitions must filter them:
        // partitions 0 and 3 pay a random read each, middles stay blind.
        let (n, cost) = c.range_count(2, 16);
        assert_eq!(n, 14);
        assert_eq!(cost.random_reads, 2);
        assert_eq!(cost.seq_reads, 6);
    }

    #[test]
    fn range_query_prunes_disjoint_zones() {
        // Partition zones: [2,8], [10,16], [18,24], [26,32].
        let c = chunk_even_2_to_32(&[2, 2, 2, 2]);
        // [9, 10): inside partition 1's covering range but outside its
        // zone — pruned without scanning.
        let (n, cost) = c.range_count(9, 10);
        assert_eq!(n, 0);
        assert_eq!(cost.values_scanned, 0);
        assert_eq!(cost.random_reads + cost.seq_reads, 0);
    }

    #[test]
    fn range_sum_payload_sums_only_qualifying() {
        let keys: Vec<u64> = (1..=8).collect();
        let pay: Vec<u32> = keys.iter().map(|&k| (k * 10) as u32).collect();
        let c = PartitionedChunk::build_with_payloads(
            keys,
            vec![pay],
            &PartitionSpec::from_block_sizes(&[1, 1, 1, 1]),
            tiny_layout(),
            &GhostPlan::none(4),
            ChunkConfig::default(),
        )
        .unwrap();
        let (sum, _) = c.range_sum_payload(2, 6, &[0]);
        assert_eq!(sum, (20 + 30 + 40 + 50) as u64);
    }

    #[test]
    fn empty_range_is_free_of_matches() {
        let c = chunk_1_to_16(&[4, 4]);
        let (n, _) = c.range_count(10, 5);
        assert_eq!(n, 0);
    }

    #[test]
    fn kernel_paths_agree_with_scalar_reference() {
        let c = chunk_even_2_to_32(&[2, 1, 3, 2]);
        for v in 0..40u64 {
            assert_eq!(
                c.point_query(v).positions,
                c.point_query_scalar(v).positions,
                "point({v})"
            );
        }
        for lo in 0..36u64 {
            for hi in lo..38 {
                assert_eq!(
                    c.range_count(lo, hi).0,
                    c.range_count_scalar(lo, hi).0,
                    "count[{lo},{hi})"
                );
            }
        }
    }
}
