//! Read operations: point and range queries over a partitioned chunk (§3,
//! Fig. 3).
//!
//! * A **point query** probes the shallow index for the one partition whose
//!   range may contain the value, then fully scans that partition with a
//!   tight loop (values are unordered within a partition).
//! * A **range query** probes the index for the first and last overlapping
//!   partitions; those two are *filtered* (they may hold non-qualifying
//!   values) while all middle partitions are *blindly consumed* — every
//!   value qualifies, so they are handed to the consumer as whole runs.

use crate::chunk::PartitionedChunk;
use crate::ops::OpCost;
use crate::value::ColumnValue;

/// Result of a point query.
#[derive(Debug, Clone, Default)]
pub struct PointQueryResult {
    /// Physical slot positions of the matching values.
    pub positions: Vec<usize>,
    /// Access pattern performed.
    pub cost: OpCost,
    /// Partition that was scanned.
    pub partition: usize,
}

/// Result of a range query.
#[derive(Debug, Clone, Copy, Default)]
pub struct RangeQueryResult {
    /// Access pattern performed.
    pub cost: OpCost,
    /// Number of qualifying values passed to the consumer.
    pub matched: u64,
}

/// Visitor receiving the qualifying rows of a range query.
///
/// The split between [`RangeConsumer::value`] and [`RangeConsumer::run`]
/// mirrors the paper's select-operator discussion: filtered partitions
/// produce individual positions, while the blindly-consumed middle
/// partitions "can simply be copied to the next query operator".
pub trait RangeConsumer<K: ColumnValue> {
    /// One qualifying value from a filtered (first/last) partition.
    fn value(&mut self, pos: usize, v: K);
    /// A contiguous run of qualifying slots from a middle partition.
    fn run(&mut self, range: std::ops::Range<usize>);
}

/// Counts qualifying rows (HAP Q2).
#[derive(Debug, Default)]
pub struct CountConsumer {
    /// Number of qualifying rows seen.
    pub count: u64,
}

impl<K: ColumnValue> RangeConsumer<K> for CountConsumer {
    #[inline]
    fn value(&mut self, _pos: usize, _v: K) {
        self.count += 1;
    }
    #[inline]
    fn run(&mut self, range: std::ops::Range<usize>) {
        self.count += range.len() as u64;
    }
}

/// Collects qualifying slot positions and runs (select returning positions).
#[derive(Debug, Default)]
pub struct PositionsConsumer {
    /// Individual qualifying positions (from filtered partitions).
    pub positions: Vec<usize>,
    /// Whole qualifying runs (from middle partitions).
    pub runs: Vec<std::ops::Range<usize>>,
}

impl<K: ColumnValue> RangeConsumer<K> for PositionsConsumer {
    #[inline]
    fn value(&mut self, pos: usize, _v: K) {
        self.positions.push(pos);
    }
    #[inline]
    fn run(&mut self, range: std::ops::Range<usize>) {
        self.runs.push(range);
    }
}

impl<K: ColumnValue> PartitionedChunk<K> {
    /// Point query: return the positions of all live values equal to `v`
    /// (Fig. 3b). Cost: one random read for the partition's first block,
    /// sequential reads for the rest — there is "no further navigation
    /// structure within a block" (§4.4), so the whole partition is scanned.
    pub fn point_query(&self, v: K) -> PointQueryResult {
        let mut cost = OpCost::default();
        let p = self.locate(v, &mut cost);
        let part = self.parts[p];
        let mut positions = Vec::new();
        if part.len > 0 && part.covers(v) {
            // Tight scan loop over the live region.
            let live = &self.data[part.start..part.live_end()];
            for (i, &x) in live.iter().enumerate() {
                if x == v {
                    positions.push(part.start + i);
                }
            }
        }
        self.charge_partition_scan(p, &mut cost);
        PointQueryResult {
            positions,
            cost,
            partition: p,
        }
    }

    /// Range query over the half-open interval `[lo, hi)` (Fig. 3c),
    /// streaming qualifying rows into `consumer`.
    pub fn range_query<C: RangeConsumer<K>>(
        &self,
        lo: K,
        hi: K,
        consumer: &mut C,
    ) -> RangeQueryResult {
        let mut cost = OpCost::default();
        let mut matched = 0u64;
        if hi <= lo {
            return RangeQueryResult { cost, matched };
        }
        let first = self.locate(lo, &mut cost);
        // Last partition overlapping [lo, hi): the one responsible for the
        // largest value < hi.
        cost.index_probes += 1;
        let last = self
            .parts
            .iter()
            .enumerate()
            .take_while(|(_, p)| p.min < hi)
            .map(|(i, _)| i)
            .last()
            .unwrap_or(first)
            .max(first);
        for p in first..=last {
            let part = self.parts[p];
            if part.len == 0 {
                continue;
            }
            let fully_inside = lo <= part.min && part.max < hi;
            if fully_inside && p != first && p != last {
                // Blind middle partition: every value qualifies; hand the
                // whole live run over. All blocks are consumed sequentially.
                consumer.run(part.start..part.live_end());
                matched += part.len as u64;
                cost.seq_reads += self.live_blocks(p) as u64;
                cost.values_scanned += part.len as u64;
            } else {
                // Filtered partition (first / last / partial overlap).
                let live = &self.data[part.start..part.live_end()];
                for (i, &x) in live.iter().enumerate() {
                    if lo <= x && x < hi {
                        consumer.value(part.start + i, x);
                        matched += 1;
                    }
                }
                self.charge_partition_scan(p, &mut cost);
            }
        }
        RangeQueryResult { cost, matched }
    }

    /// Convenience wrapper: count rows in `[lo, hi)` (HAP Q2).
    pub fn range_count(&self, lo: K, hi: K) -> (u64, OpCost) {
        let mut c = CountConsumer::default();
        let r = self.range_query(lo, hi, &mut c);
        (c.count, r.cost)
    }

    /// Convenience wrapper: sum the given payload columns over all rows in
    /// `[lo, hi)` (HAP Q3).
    pub fn range_sum_payload(&self, lo: K, hi: K, cols: &[usize]) -> (u64, OpCost) {
        let mut pc = PositionsConsumer::default();
        let r = self.range_query(lo, hi, &mut pc);
        let mut cost = r.cost;
        let mut sum = self.payloads.sum_positions(cols, &pc.positions);
        for run in &pc.runs {
            sum += self.payloads.sum_range(cols, run.clone());
        }
        // Payload reads are sequential over the qualifying blocks, one scan
        // per projected column.
        let vpb = self.layout.values_per_block().max(1);
        let qualifying: usize = pc.positions.len() + pc.runs.iter().map(|r| r.len()).sum::<usize>();
        cost.seq_reads += (cols.len() * qualifying.div_ceil(vpb)) as u64;
        (sum, cost)
    }

    /// Charge the cost of fully scanning partition `p`'s live region: one
    /// random read to reach it, sequential reads for its remaining blocks.
    pub(crate) fn charge_partition_scan(&self, p: usize, cost: &mut OpCost) {
        let blocks = self.live_blocks(p) as u64;
        if blocks > 0 {
            cost.random_reads += 1;
            cost.seq_reads += blocks - 1;
        } else {
            // Empty partition: the probe alone suffices, but charge the
            // random read the model predicts for the ideal case.
            cost.random_reads += 1;
        }
        cost.values_scanned += self.parts[p].len as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkConfig;
    use crate::ghost::GhostPlan;
    use crate::layout::{BlockLayout, PartitionSpec};

    fn tiny_layout() -> BlockLayout {
        BlockLayout {
            block_bytes: 16,
            value_width: 8,
        } // 2 values per block
    }

    fn chunk_1_to_16(sizes: &[usize]) -> PartitionedChunk<u64> {
        PartitionedChunk::build(
            (1..=16).collect(),
            &PartitionSpec::from_block_sizes(sizes),
            tiny_layout(),
            &GhostPlan::none(sizes.len()),
            ChunkConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn point_query_finds_value() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        let r = c.point_query(7);
        assert_eq!(r.positions.len(), 1);
        assert_eq!(c.data[r.positions[0]], 7);
        assert_eq!(r.partition, 1); // values 5..8
    }

    #[test]
    fn point_query_misses_cleanly() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        let r = c.point_query(100);
        assert!(r.positions.is_empty());
        // Still scanned the last partition (empty point queries cost the
        // same, §4.4).
        assert!(r.cost.values_scanned > 0);
    }

    #[test]
    fn point_query_cost_scales_with_partition_size() {
        // One partition of 8 blocks vs eight partitions of 1 block.
        let big = chunk_1_to_16(&[8]);
        let small = chunk_1_to_16(&[1; 8]);
        let rb = big.point_query(3);
        let rs = small.point_query(3);
        assert_eq!(rb.cost.random_reads, 1);
        assert_eq!(rb.cost.seq_reads, 7);
        assert_eq!(rs.cost.random_reads, 1);
        assert_eq!(rs.cost.seq_reads, 0);
    }

    #[test]
    fn point_query_duplicates_all_found() {
        let c = PartitionedChunk::build(
            vec![5u64, 5, 5, 1, 2, 3, 9, 9],
            &PartitionSpec::from_block_sizes(&[2, 2]),
            tiny_layout(),
            &GhostPlan::none(2),
            ChunkConfig::default(),
        )
        .unwrap();
        let r = c.point_query(5);
        assert_eq!(r.positions.len(), 3);
    }

    #[test]
    fn range_count_exact() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        let (n, _) = c.range_count(3, 11);
        assert_eq!(n, 8); // 3..=10
        let (n, _) = c.range_count(1, 17);
        assert_eq!(n, 16);
        let (n, _) = c.range_count(8, 8);
        assert_eq!(n, 0);
        let (n, _) = c.range_count(16, 16000);
        assert_eq!(n, 1);
    }

    #[test]
    fn range_query_blind_middles_are_runs() {
        let c = chunk_1_to_16(&[1, 1, 1, 1, 1, 1, 1, 1]);
        let mut pc = PositionsConsumer::default();
        let r = c.range_query(2, 15, &mut pc);
        assert_eq!(r.matched, 13); // 2..=14
        assert!(!pc.runs.is_empty(), "middle partitions must arrive as runs");
        let run_total: usize = pc.runs.iter().map(|r| r.len()).sum();
        assert_eq!(run_total + pc.positions.len(), 13);
    }

    #[test]
    fn range_query_single_partition_is_filtered() {
        let c = chunk_1_to_16(&[8]);
        let mut pc = PositionsConsumer::default();
        let r = c.range_query(5, 9, &mut pc);
        assert_eq!(r.matched, 4);
        assert!(pc.runs.is_empty());
        assert_eq!(pc.positions.len(), 4);
    }

    #[test]
    fn range_cost_counts_blind_blocks_sequentially() {
        let c = chunk_1_to_16(&[2, 2, 2, 2]);
        // Covers all four partitions: first and last filtered, two middles
        // blind (2 blocks each).
        let (_, cost) = c.range_count(1, 17);
        // first partition: 1 RR + 1 SR; middles: 2+2 SR; last: 1 RR + 1 SR.
        assert_eq!(cost.random_reads, 2);
        assert_eq!(cost.seq_reads, 6);
    }

    #[test]
    fn range_sum_payload_sums_only_qualifying() {
        let keys: Vec<u64> = (1..=8).collect();
        let pay: Vec<u32> = keys.iter().map(|&k| (k * 10) as u32).collect();
        let c = PartitionedChunk::build_with_payloads(
            keys,
            vec![pay],
            &PartitionSpec::from_block_sizes(&[1, 1, 1, 1]),
            tiny_layout(),
            &GhostPlan::none(4),
            ChunkConfig::default(),
        )
        .unwrap();
        let (sum, _) = c.range_sum_payload(2, 6, &[0]);
        assert_eq!(sum, (20 + 30 + 40 + 50) as u64);
    }

    #[test]
    fn empty_range_is_free_of_matches() {
        let c = chunk_1_to_16(&[4, 4]);
        let (n, _) = c.range_count(10, 5);
        assert_eq!(n, 0);
    }
}
