//! The five storage-engine operations of §3, plus their cost accounting.
//!
//! Every operation reports an [`OpCost`]: the block-level access pattern it
//! actually performed, broken down into the four access classes of the
//! paper's I/O model (§4.4) — random/sequential × read/write — plus probe
//! and scan counters. `casper-core`'s cost model predicts exactly these
//! quantities, which is how Fig. 9 (cost-model verification) is reproduced.

pub(crate) mod read;
pub mod scalar;
mod write;

pub use read::{
    CountConsumer, PointQueryResult, PositionsConsumer, RangeConsumer, RangeQueryResult,
};
pub use write::WriteResult;

/// Block-level access counts incurred by one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCost {
    /// Random block reads (partition jumps, first block of a scan).
    pub random_reads: u64,
    /// Random block writes (ripple moves, in-place updates).
    pub random_writes: u64,
    /// Sequential block reads (continuation blocks of a scan).
    pub seq_reads: u64,
    /// Sequential block writes (bulk shifts in the sorted baseline).
    pub seq_writes: u64,
    /// Shallow partition-index probes (shared cost, excluded from the
    /// layout optimization per §4.2).
    pub index_probes: u64,
    /// Individual values examined by tight-loop scans.
    pub values_scanned: u64,
}

impl OpCost {
    /// Accumulate another cost into this one.
    #[inline]
    pub fn absorb(&mut self, other: OpCost) {
        self.random_reads += other.random_reads;
        self.random_writes += other.random_writes;
        self.seq_reads += other.seq_reads;
        self.seq_writes += other.seq_writes;
        self.index_probes += other.index_probes;
        self.values_scanned += other.values_scanned;
    }

    /// Evaluate this access pattern under an I/O cost model: nanoseconds
    /// given per-block costs for the four access classes.
    pub fn nanos(&self, rr: f64, rw: f64, sr: f64, sw: f64) -> f64 {
        self.random_reads as f64 * rr
            + self.random_writes as f64 * rw
            + self.seq_reads as f64 * sr
            + self.seq_writes as f64 * sw
    }

    /// Total block touches (reads + writes, any pattern).
    pub fn total_block_accesses(&self) -> u64 {
        self.random_reads + self.random_writes + self.seq_reads + self.seq_writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_adds_componentwise() {
        let mut a = OpCost {
            random_reads: 1,
            seq_reads: 2,
            ..Default::default()
        };
        a.absorb(OpCost {
            random_reads: 3,
            random_writes: 4,
            ..Default::default()
        });
        assert_eq!(a.random_reads, 4);
        assert_eq!(a.random_writes, 4);
        assert_eq!(a.seq_reads, 2);
    }

    #[test]
    fn nanos_weighs_each_class() {
        let c = OpCost {
            random_reads: 2,
            random_writes: 1,
            seq_reads: 10,
            seq_writes: 0,
            ..Default::default()
        };
        let ns = c.nanos(100.0, 100.0, 7.0, 7.0);
        assert!((ns - (200.0 + 100.0 + 70.0)).abs() < 1e-9);
    }
}
