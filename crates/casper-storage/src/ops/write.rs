//! Write operations: insert, delete, update (§3, Fig. 4, Fig. 5).
//!
//! All three are built on the chunk's slot-transfer primitives:
//!
//! * **insert** — place the value in its target partition, consuming a
//!   local ghost slot when one exists; otherwise ripple a slot in from the
//!   nearest donor (ghost policy) or the column tail (dense policy).
//! * **delete** — point-query the target partition, swap-fill the matches
//!   out of the live region, then either leave the freed slots as ghosts
//!   (ghost policy) or ripple each hole out to the column tail (dense).
//! * **update** — point-query the source, then ripple *directly* from
//!   source to target partition, forward or backward — the paper's
//!   optimization over delete-then-insert.

use crate::chunk::{DonorSide, PartitionedChunk};
use crate::error::StorageError;
use crate::ops::OpCost;
use crate::value::ColumnValue;
use crate::UpdatePolicy;

/// Result of a write operation.
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteResult {
    /// Rows affected (0 when a delete/update found no match).
    pub affected: u64,
    /// Access pattern performed.
    pub cost: OpCost,
    /// Partitions whose contents were touched (source..=target span for
    /// ripples); used by the engine for contention accounting.
    pub partitions_touched: u64,
}

impl<K: ColumnValue> PartitionedChunk<K> {
    /// Insert `v` (with an optional payload row — pass `&[]` for key-only
    /// chunks).
    pub fn insert(&mut self, v: K, payload: &[u32]) -> Result<WriteResult, StorageError> {
        if !self.payloads.is_empty() && payload.len() != self.payloads.width() {
            return Err(StorageError::PayloadArity {
                expected: self.payloads.width(),
                got: payload.len(),
            });
        }
        let mut cost = OpCost::default();
        let m = self.locate(v, &mut cost);
        // Decode-on-write: a compressed insert target reverts to plain
        // slots before any slot moves.
        self.decompress_partition(m);
        let slot = self.acquire_slot(m, &mut cost)?;
        self.data[slot] = v;
        if !self.payloads.is_empty() {
            self.payloads.set_row(slot, payload);
        }
        cost.random_writes += 1;
        self.parts[m].len += 1;
        self.live += 1;
        self.widen_bounds(m, v);
        self.zones[m].include(v);
        Ok(WriteResult {
            affected: 1,
            cost,
            partitions_touched: 1,
        })
    }

    /// Acquire a free slot at the end of partition `m`'s live region,
    /// consuming a ghost or rippling one in. The returned slot is booked
    /// into the partition's live region boundary (caller increments `len`).
    fn acquire_slot(&mut self, m: usize, cost: &mut OpCost) -> Result<usize, StorageError> {
        let part = self.parts[m];
        // Fast path: the partition buffers its own ghost slot (Fig. 5) —
        // "inserts use empty slots".
        if part.ghosts > 0 {
            self.parts[m].ghosts -= 1;
            return Ok(part.live_end());
        }
        match self.config.policy {
            UpdatePolicy::Dense => {
                // Ripple from the column tail (Fig. 4a).
                if self.tail_free() == 0 {
                    return Err(StorageError::ChunkFull {
                        capacity: self.data.len(),
                    });
                }
                Ok(self.pull_slot_from_right(m, None, cost))
            }
            UpdatePolicy::Ghost => {
                // Nearest donor first; fall back to the tail. Fetch a block
                // of ghosts per §6.1 so neighbouring inserts benefit too.
                let fetch = self.config.ghost_fetch_block.max(1);
                match self.nearest_donor(m) {
                    Some(DonorSide::Right(j)) => {
                        // Pull up to `fetch` slots: the first feeds the
                        // insert, the rest accumulate as ghosts of `m` so
                        // neighbouring inserts avoid future ripples.
                        let available = self.parts[j].ghosts.min(fetch);
                        let first = self.pull_slot_from_right(m, Some(j), cost);
                        for _ in 1..available {
                            // Book the previous hole as a ghost of `m`
                            // before pulling the next one so the extents
                            // stay consistent.
                            self.parts[m].ghosts += 1;
                            self.pull_slot_from_right(m, Some(j), cost);
                        }
                        Ok(first)
                    }
                    Some(DonorSide::Left(j)) => {
                        // Left donors hand over exactly one slot: the hole
                        // arrives immediately *before* the live region, so
                        // the partition extends leftwards and the new value
                        // is written at its new first slot (partitions are
                        // internally unordered). Block prefetch is a
                        // forward-only optimization.
                        let hole = self.pull_slot_from_left(m, j, cost);
                        self.parts[m].start = hole;
                        Ok(hole)
                    }
                    None => {
                        if self.tail_free() == 0 {
                            return Err(StorageError::ChunkFull {
                                capacity: self.data.len(),
                            });
                        }
                        Ok(self.pull_slot_from_right(m, None, cost))
                    }
                }
            }
        }
    }

    /// Ensure the partition covering `v` buffers at least `count` ghost
    /// slots, pulling them from the nearest donors (or the tail).
    ///
    /// This is the decoupled ghost rippling of §6.1: "we decouple the ghost
    /// value rippling from the transaction since it does not affect
    /// correctness. Hence, even if a transaction is rolled back, the
    /// already completed fetching of ghost values will persist."
    pub fn prefetch_ghosts(&mut self, v: K, count: usize) -> OpCost {
        let mut cost = OpCost::default();
        let m = self.locate(v, &mut cost);
        if self.parts[m].ghosts < count {
            // Left-donor rotations below move `m`'s own live values.
            self.decompress_partition(m);
        }
        while self.parts[m].ghosts < count {
            match self.nearest_donor(m) {
                Some(DonorSide::Right(j)) if j != m => {
                    self.pull_slot_from_right(m, Some(j), &mut cost);
                    self.parts[m].ghosts += 1;
                }
                Some(DonorSide::Left(j)) if j != m => {
                    let hole = self.pull_slot_from_left(m, j, &mut cost);
                    // The hole lands in front of the live region: rotate one
                    // live value into it so the ghost sits at the end, where
                    // the layout keeps buffer slots.
                    let part = self.parts[m];
                    if part.len > 0 {
                        self.move_slot(part.live_end() - 1, hole, &mut cost);
                    }
                    self.parts[m].start -= 1;
                    self.parts[m].ghosts += 1;
                }
                _ => {
                    if self.tail_free() == 0 {
                        break; // physically out of space: prefetch is best-effort
                    }
                    self.pull_slot_from_right(m, None, &mut cost);
                    self.parts[m].ghosts += 1;
                }
            }
        }
        cost
    }

    /// Delete every live value equal to `v`. Returns the number of rows
    /// removed (`del_card` in the paper's cost analysis).
    pub fn delete(&mut self, v: K) -> WriteResult {
        let mut cost = OpCost::default();
        let m = self.locate(v, &mut cost);
        // The embedded point query (§4.4: "a delete requires a point
        // query").
        self.charge_partition_scan(m, &mut cost);
        let part = self.parts[m];
        let mut removed = 0usize;
        if part.len > 0 && part.covers(v) {
            // Decode-on-write before the swap-fill can move slots. (A miss
            // inside the covering range also decompresses — the partition
            // is evidently a write target.)
            self.decompress_partition(m);
            // Swap-fill matches out of the live region (Fig. 4b: deleted
            // slots move to the end of the partition).
            let mut pos = part.start;
            let mut live_end = part.live_end();
            while pos < live_end {
                if self.data[pos] == v {
                    live_end -= 1;
                    if pos != live_end {
                        self.move_slot(live_end, pos, &mut cost);
                    } else {
                        cost.random_writes += 1;
                    }
                    removed += 1;
                } else {
                    pos += 1;
                }
            }
        }
        if removed == 0 {
            return WriteResult {
                affected: 0,
                cost,
                partitions_touched: 1,
            };
        }
        self.parts[m].len -= removed;
        self.parts[m].ghosts += removed;
        self.live -= removed;
        if self.zones[m].on_boundary(v) {
            // A boundary value left the partition; the scan above already
            // paid for the pass, so re-tighten the zone now.
            self.recompute_zone(m);
        }
        let mut partitions_touched = 1u64;
        if self.config.policy == UpdatePolicy::Dense {
            // Ripple every hole out to the column tail to restore density.
            for _ in 0..removed {
                self.push_slot_to_tail(m, &mut cost);
            }
            partitions_touched += (self.parts.len() - 1 - m) as u64;
        }
        WriteResult {
            affected: removed as u64,
            cost,
            partitions_touched,
        }
    }

    /// Update the first live value equal to `old` to become `new` — the
    /// direct ripple update of §3 ("the shallow index is probed twice to
    /// find the source and the destination partitions, followed by a direct
    /// ripple update between these two partitions").
    pub fn update(&mut self, old: K, new: K) -> Result<WriteResult, StorageError> {
        let mut cost = OpCost::default();
        let m = self.locate(old, &mut cost);
        self.charge_partition_scan(m, &mut cost);
        let part = self.parts[m];
        let mut found: Option<usize> = None;
        if part.len > 0 && part.covers(old) {
            let live = &self.data[part.start..part.live_end()];
            found = live
                .iter()
                .position(|&x| x == old)
                .map(|off| part.start + off);
        }
        let Some(pos) = found else {
            return Ok(WriteResult {
                affected: 0,
                cost,
                partitions_touched: 1,
            });
        };
        let t = self.locate(new, &mut cost);
        // Decode-on-write: both ends of the ripple revert to plain slots.
        self.decompress_partition(m);
        self.decompress_partition(t);
        if t == m {
            // Same partition: overwrite in place (unordered internally).
            self.data[pos] = new;
            cost.random_writes += 1;
            self.widen_bounds(m, new);
            if self.zones[m].on_boundary(old) {
                self.recompute_zone(m);
            } else {
                self.zones[m].include(new);
            }
            return Ok(WriteResult {
                affected: 1,
                cost,
                partitions_touched: 1,
            });
        }
        // Remove `old` from its partition: swap the last live value into
        // its place, leaving a surplus slot at the live boundary
        // (the (RR + 2RW) fixed term of Eq. 12).
        let last = self.parts[m].live_end() - 1;
        if pos != last {
            self.move_slot(last, pos, &mut cost);
        } else {
            cost.random_writes += 1;
        }
        self.parts[m].len -= 1;
        self.parts[m].ghosts += 1;
        if self.zones[m].on_boundary(old) {
            self.recompute_zone(m);
        }
        let slot = match self.config.policy {
            UpdatePolicy::Ghost if self.parts[t].ghosts > 0 => {
                // Both sides buffered: no ripple at all (the contention
                // reduction §6.1 highlights).
                self.parts[t].ghosts -= 1;
                self.parts[t].live_end()
            }
            _ => {
                // Direct ripple between source and target, consuming the
                // surplus slot we just created in `m`.
                if t > m {
                    let hole = self.pull_slot_from_left(t, m, &mut cost);
                    self.parts[t].start = hole;
                    hole
                } else {
                    self.pull_slot_from_right(t, Some(m), &mut cost)
                }
            }
        };
        self.data[slot] = new;
        cost.random_writes += 1;
        self.parts[t].len += 1;
        self.widen_bounds(t, new);
        self.zones[t].include(new);
        Ok(WriteResult {
            affected: 1,
            cost,
            partitions_touched: (m.abs_diff(t) + 1) as u64,
        })
    }

    /// Remove the first live row equal to `v` and return its full payload
    /// row — the single-row half of a cross-chunk update. Mirrors
    /// [`PartitionedChunk::update`]'s source-side removal (first match only,
    /// swap-filled out of the live region) rather than
    /// [`PartitionedChunk::delete`]'s drain-all semantics, so a move between
    /// chunks affects exactly one row even under duplicate keys.
    pub fn take_one(&mut self, v: K) -> (Option<Vec<u32>>, WriteResult) {
        let mut cost = OpCost::default();
        let m = self.locate(v, &mut cost);
        self.charge_partition_scan(m, &mut cost);
        let part = self.parts[m];
        let mut found: Option<usize> = None;
        if part.len > 0 && part.covers(v) {
            let live = &self.data[part.start..part.live_end()];
            found = live
                .iter()
                .position(|&x| x == v)
                .map(|off| part.start + off);
        }
        let Some(pos) = found else {
            return (
                None,
                WriteResult {
                    affected: 0,
                    cost,
                    partitions_touched: 1,
                },
            );
        };
        let row: Vec<u32> = (0..self.payloads.width())
            .map(|c| self.payloads.get(c, pos))
            .collect();
        self.decompress_partition(m);
        let last = self.parts[m].live_end() - 1;
        if pos != last {
            self.move_slot(last, pos, &mut cost);
        } else {
            cost.random_writes += 1;
        }
        self.parts[m].len -= 1;
        self.parts[m].ghosts += 1;
        self.live -= 1;
        if self.zones[m].on_boundary(v) {
            self.recompute_zone(m);
        }
        let mut partitions_touched = 1u64;
        if self.config.policy == UpdatePolicy::Dense {
            self.push_slot_to_tail(m, &mut cost);
            partitions_touched += (self.parts.len() - 1 - m) as u64;
        }
        (
            Some(row),
            WriteResult {
                affected: 1,
                cost,
                partitions_touched,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkConfig;
    use crate::ghost::GhostPlan;
    use crate::layout::{BlockLayout, PartitionSpec};

    fn tiny_layout() -> BlockLayout {
        BlockLayout {
            block_bytes: 16,
            value_width: 8,
        } // 2 values per block
    }

    fn build(
        values: Vec<u64>,
        sizes: &[usize],
        ghosts: &[usize],
        config: ChunkConfig,
    ) -> PartitionedChunk<u64> {
        PartitionedChunk::build(
            values,
            &PartitionSpec::from_block_sizes(sizes),
            tiny_layout(),
            &GhostPlan::from_counts(ghosts.to_vec()),
            config,
        )
        .unwrap()
    }

    fn all_values(c: &PartitionedChunk<u64>) -> Vec<u64> {
        let mut v: Vec<u64> = (0..c.partition_count())
            .flat_map(|p| c.partition_values(p).to_vec())
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn insert_with_local_ghost_is_one_write() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0, 1, 0, 0],
            ChunkConfig::default(),
        );
        let r = c.insert(4, &[]).unwrap(); // partition 1 covers 3..=4
        assert_eq!(r.affected, 1);
        assert_eq!(r.cost.random_writes, 1);
        assert_eq!(r.cost.random_reads, 0);
        assert_eq!(c.live_len(), 9);
        assert_eq!(c.ghost_total(), 0);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn insert_dense_ripples_from_tail() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0; 4],
            ChunkConfig::dense(),
        );
        let r = c.insert(3, &[]).unwrap(); // partition 1
                                           // Partitions 2 and 3 shift (2 moves) + the value write.
        assert_eq!(r.cost.random_writes, 3);
        assert_eq!(c.live_len(), 9);
        assert_eq!(all_values(&c), vec![1, 2, 3, 3, 4, 5, 6, 7, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn insert_ghost_policy_uses_nearest_donor() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0, 0, 1, 0],
            ChunkConfig::default(),
        );
        let r = c.insert(1, &[]).unwrap(); // partition 0; donor is partition 2
                                           // Ripple over partitions 1 and 2 (2 moves) + value write.
        assert_eq!(r.cost.random_writes, 3);
        assert_eq!(c.ghost_total(), 0);
        assert_eq!(all_values(&c), vec![1, 1, 2, 3, 4, 5, 6, 7, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn insert_ghost_policy_left_donor() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[1, 0, 0, 0],
            ChunkConfig::default(),
        );
        let r = c.insert(8, &[]).unwrap(); // partition 3; donor partition 0
        assert_eq!(r.affected, 1);
        assert_eq!(c.ghost_total(), 0);
        assert_eq!(all_values(&c), vec![1, 2, 3, 4, 5, 6, 7, 8, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn insert_new_maximum_extends_last_partition() {
        let mut c = build((1..=8).collect(), &[2, 2], &[0, 1], ChunkConfig::default());
        c.insert(1000, &[]).unwrap();
        let r = c.point_query(1000);
        assert_eq!(r.positions.len(), 1);
        assert_eq!(r.partition, 1);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn insert_below_minimum_goes_to_first_partition() {
        let mut c = build(
            (10..=17).collect(),
            &[2, 2],
            &[1, 0],
            ChunkConfig::default(),
        );
        c.insert(1, &[]).unwrap();
        let r = c.point_query(1);
        assert_eq!(r.positions.len(), 1);
        assert_eq!(r.partition, 0);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn insert_until_full_errors() {
        let mut c = build((1..=8).collect(), &[2, 2], &[0, 0], ChunkConfig::dense());
        let mut inserted = 0;
        loop {
            match c.insert(4, &[]) {
                Ok(_) => inserted += 1,
                Err(StorageError::ChunkFull { .. }) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(inserted < 10_000, "chunk never filled");
        }
        assert_eq!(c.live_len(), 8 + inserted);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn delete_ghost_policy_leaves_ghosts() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0; 4],
            ChunkConfig::default(),
        );
        let r = c.delete(5);
        assert_eq!(r.affected, 1);
        assert_eq!(c.live_len(), 7);
        assert_eq!(c.ghost_total(), 1);
        assert_eq!(c.parts[2].ghosts, 1);
        assert!(c.point_query(5).positions.is_empty());
        c.validate_invariants().unwrap();
    }

    #[test]
    fn delete_dense_ripples_to_tail() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0; 4],
            ChunkConfig::dense(),
        );
        let before_tail = c.tail_free();
        let r = c.delete(3); // partition 1: two trailing partitions shift
        assert_eq!(r.affected, 1);
        assert_eq!(c.ghost_total(), 0);
        assert_eq!(c.tail_free(), before_tail + 1);
        assert_eq!(all_values(&c), vec![1, 2, 4, 5, 6, 7, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn delete_multiple_matches() {
        let mut c = build(
            vec![5, 5, 5, 1, 2, 3, 9, 9],
            &[2, 2],
            &[0, 0],
            ChunkConfig::default(),
        );
        let r = c.delete(5);
        assert_eq!(r.affected, 3);
        assert_eq!(c.live_len(), 5);
        assert!(c.point_query(5).positions.is_empty());
        c.validate_invariants().unwrap();
    }

    #[test]
    fn delete_missing_value_is_noop_with_cost() {
        let mut c = build((1..=8).collect(), &[2, 2], &[0, 0], ChunkConfig::default());
        let r = c.delete(100);
        assert_eq!(r.affected, 0);
        assert!(r.cost.values_scanned > 0);
        assert_eq!(c.live_len(), 8);
    }

    #[test]
    fn update_same_partition_in_place() {
        let mut c = build((1..=8).collect(), &[2, 2], &[0, 0], ChunkConfig::default());
        let r = c.update(3, 4).unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(r.partitions_touched, 1);
        assert_eq!(all_values(&c), vec![1, 2, 4, 4, 5, 6, 7, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn update_forward_ripple_dense() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0; 4],
            ChunkConfig::dense(),
        );
        // 1 lives in partition 0; 8 maps to partition 3 → forward ripple.
        let r = c.update(1, 8).unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(r.partitions_touched, 4);
        assert_eq!(all_values(&c), vec![2, 3, 4, 5, 6, 7, 8, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn update_backward_ripple_dense() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0; 4],
            ChunkConfig::dense(),
        );
        let r = c.update(8, 1).unwrap();
        assert_eq!(r.affected, 1);
        assert_eq!(r.partitions_touched, 4);
        assert_eq!(all_values(&c), vec![1, 1, 2, 3, 4, 5, 6, 7]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn update_ghost_both_sides_avoids_ripple() {
        let mut c = build(
            (1..=8).collect(),
            &[1, 1, 1, 1],
            &[0, 0, 0, 1],
            ChunkConfig::default(),
        );
        let r = c.update(1, 8).unwrap();
        assert_eq!(r.affected, 1);
        // Swap-out write + value write only; no ripple moves.
        assert!(r.cost.random_writes <= 2, "cost was {:?}", r.cost);
        assert_eq!(c.parts[0].ghosts, 1); // source gained a ghost
        assert_eq!(c.parts[3].ghosts, 0); // target consumed its ghost
        assert_eq!(all_values(&c), vec![2, 3, 4, 5, 6, 7, 8, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn update_missing_value_is_noop() {
        let mut c = build((1..=8).collect(), &[2, 2], &[0, 0], ChunkConfig::default());
        let r = c.update(100, 1).unwrap();
        assert_eq!(r.affected, 0);
        assert_eq!(c.live_len(), 8);
    }

    #[test]
    fn insert_with_payload_row() {
        let mut c = PartitionedChunk::build_with_payloads(
            (1..=8).collect(),
            vec![(1..=8).map(|k| (k * 10) as u32).collect()],
            &PartitionSpec::from_block_sizes(&[2, 2]),
            tiny_layout(),
            &GhostPlan::from_counts(vec![1, 1]),
            ChunkConfig::default(),
        )
        .unwrap();
        c.insert(3, &[35]).unwrap();
        let r = c.point_query(3);
        assert_eq!(r.positions.len(), 2);
        let vals: Vec<u32> = r
            .positions
            .iter()
            .map(|&p| c.payloads().get(0, p))
            .collect();
        assert!(vals.contains(&30) && vals.contains(&35));
    }

    #[test]
    fn payload_arity_checked_on_insert() {
        let mut c = PartitionedChunk::build_with_payloads(
            (1..=4).collect(),
            vec![vec![1, 2, 3, 4], vec![5, 6, 7, 8]],
            &PartitionSpec::from_block_sizes(&[2]),
            tiny_layout(),
            &GhostPlan::from_counts(vec![1]),
            ChunkConfig::default(),
        )
        .unwrap();
        assert!(matches!(
            c.insert(2, &[9]),
            Err(StorageError::PayloadArity { .. })
        ));
    }

    #[test]
    fn ghost_fetch_block_prefetches_slots() {
        let mut cfg = ChunkConfig::default();
        cfg.ghost_fetch_block = 3;
        let mut c = build((1..=8).collect(), &[1, 1, 1, 1], &[0, 0, 0, 4], cfg);
        c.insert(1, &[]).unwrap();
        // One slot consumed by the insert, two more prefetched as ghosts of
        // partition 0.
        assert_eq!(c.parts[0].ghosts, 2);
        assert_eq!(c.parts[3].ghosts, 1);
        assert_eq!(all_values(&c), vec![1, 1, 2, 3, 4, 5, 6, 7, 8]);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn interleaved_workload_preserves_multiset() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for &policy in &[UpdatePolicy::Ghost, UpdatePolicy::Dense] {
            let mut cfg = ChunkConfig::default();
            cfg.policy = policy;
            cfg.capacity_slack = 0.5;
            let ghosts = if policy == UpdatePolicy::Ghost {
                vec![2, 2, 2, 2]
            } else {
                vec![0, 0, 0, 0]
            };
            let mut c = build(
                (1..=32).map(|x| x * 10).collect(),
                &[4, 4, 4, 4],
                &ghosts,
                cfg,
            );
            let mut reference: Vec<u64> = (1..=32).map(|x| x * 10).collect();
            for _ in 0..300 {
                match rng.gen_range(0..4) {
                    0 => {
                        let v = rng.gen_range(0..400);
                        if c.insert(v, &[]).is_ok() {
                            reference.push(v);
                        }
                    }
                    1 => {
                        let v = rng.gen_range(0..400);
                        let r = c.delete(v);
                        for _ in 0..r.affected {
                            let idx = reference.iter().position(|&x| x == v).unwrap();
                            reference.swap_remove(idx);
                        }
                    }
                    2 => {
                        let old = rng.gen_range(0..400);
                        let new = rng.gen_range(0..400);
                        let r = c.update(old, new).unwrap();
                        if r.affected == 1 {
                            let idx = reference.iter().position(|&x| x == old).unwrap();
                            reference[idx] = new;
                        }
                    }
                    _ => {
                        let v = rng.gen_range(0..400);
                        let got = c.point_query(v).positions.len();
                        let want = reference.iter().filter(|&&x| x == v).count();
                        assert_eq!(got, want, "point query mismatch for {v}");
                    }
                }
                c.validate_invariants()
                    .unwrap_or_else(|e| panic!("invariant violated ({policy:?}): {e}"));
                let mut expect = reference.clone();
                expect.sort_unstable();
                assert_eq!(all_values(&c), expect);
            }
        }
    }
}
