//! Scalar reference implementations of the read paths.
//!
//! These are the original branchy, one-value-at-a-time loops, retained
//! verbatim (no zone-map pruning, no batch kernels) for two purposes:
//!
//! * **equivalence testing** — property tests assert the kernel paths in
//!   [`crate::ops::read`] return bit-identical results;
//! * **benchmarking** — `casper-bench`'s `scan_ops` bench measures the
//!   kernel speedup against these baselines on the same data.
//!
//! They are not wired into the engine; production reads always take the
//! kernel paths.

use crate::chunk::PartitionedChunk;
use crate::ops::read::{PointQueryResult, PositionsConsumer, RangeConsumer, RangeQueryResult};
use crate::ops::OpCost;
use crate::value::ColumnValue;

impl<K: ColumnValue> PartitionedChunk<K> {
    /// Scalar twin of [`PartitionedChunk::point_query`]: branchy per-value
    /// loop, covering-bound check only (no zone pruning).
    pub fn point_query_scalar(&self, v: K) -> PointQueryResult {
        let mut cost = OpCost::default();
        let p = self.locate(v, &mut cost);
        let part = self.parts[p];
        let mut positions = Vec::new();
        if part.len > 0 && part.covers(v) {
            let live = &self.data[part.start..part.live_end()];
            for (i, &x) in live.iter().enumerate() {
                if x == v {
                    positions.push(part.start + i);
                }
            }
        }
        self.charge_partition_scan(p, &mut cost);
        PointQueryResult {
            positions,
            cost,
            partition: p,
        }
    }

    /// Scalar twin of [`PartitionedChunk::range_query`]: blind consumption
    /// only for strict middle partitions, per-value filtering elsewhere.
    pub fn range_query_scalar<C: RangeConsumer<K>>(
        &self,
        lo: K,
        hi: K,
        consumer: &mut C,
    ) -> RangeQueryResult {
        let mut cost = OpCost::default();
        let mut matched = 0u64;
        if hi <= lo {
            return RangeQueryResult { cost, matched };
        }
        let (first, last) = self.range_partition_span(lo, hi, &mut cost);
        for p in first..=last {
            let part = self.parts[p];
            if part.len == 0 {
                continue;
            }
            let fully_inside = lo <= part.min && part.max < hi;
            if fully_inside && p != first && p != last {
                consumer.run(part.start..part.live_end());
                matched += part.len as u64;
                cost.seq_reads += self.live_blocks(p) as u64;
                cost.values_scanned += part.len as u64;
            } else {
                let live = &self.data[part.start..part.live_end()];
                for (i, &x) in live.iter().enumerate() {
                    if lo <= x && x < hi {
                        consumer.value(part.start + i, x);
                        matched += 1;
                    }
                }
                self.charge_partition_scan(p, &mut cost);
            }
        }
        consumer.flush();
        RangeQueryResult { cost, matched }
    }

    /// Scalar twin of [`PartitionedChunk::range_count`].
    pub fn range_count_scalar(&self, lo: K, hi: K) -> (u64, OpCost) {
        let mut c = crate::ops::read::CountConsumer::default();
        let r = self.range_query_scalar(lo, hi, &mut c);
        (c.count, r.cost)
    }

    /// Scalar twin of [`PartitionedChunk::range_sum_payload`]: positions
    /// are materialized through a consumer and summed one slot at a time.
    pub fn range_sum_payload_scalar(&self, lo: K, hi: K, cols: &[usize]) -> (u64, OpCost) {
        let mut pc = PositionsConsumer::default();
        let r = self.range_query_scalar(lo, hi, &mut pc);
        let mut cost = r.cost;
        let mut sum = self.payloads.sum_positions(cols, &pc.positions);
        for run in &pc.runs {
            sum += self.payloads.sum_range(cols, run.clone());
        }
        let vpb = self.layout.values_per_block().max(1);
        let qualifying: usize = pc.total();
        cost.seq_reads += (cols.len() * qualifying.div_ceil(vpb)) as u64;
        (sum, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkConfig;
    use crate::ghost::GhostPlan;
    use crate::layout::{BlockLayout, PartitionSpec};

    fn chunk() -> PartitionedChunk<u64> {
        PartitionedChunk::build_with_payloads(
            (1..=32).map(|x| x * 3).collect(),
            vec![(0..32u32).map(|i| i + 100).collect()],
            &PartitionSpec::from_block_sizes(&[2, 3, 2, 1]),
            BlockLayout {
                block_bytes: 32,
                value_width: 8,
            },
            &GhostPlan::from_counts(vec![1, 0, 2, 0]),
            ChunkConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn scalar_point_query_behaves_like_original() {
        let c = chunk();
        assert_eq!(c.point_query_scalar(9).positions.len(), 1);
        let miss = c.point_query_scalar(1000);
        assert!(miss.positions.is_empty());
        // The scalar path keeps the original semantics: misses pay the
        // full partition scan.
        assert!(miss.cost.values_scanned > 0);
    }

    #[test]
    fn scalar_and_kernel_results_agree_on_sums() {
        let c = chunk();
        for (lo, hi) in [(0u64, 200), (10, 50), (33, 34), (95, 97), (5, 5)] {
            assert_eq!(
                c.range_sum_payload(lo, hi, &[0]).0,
                c.range_sum_payload_scalar(lo, hi, &[0]).0,
                "sum[{lo},{hi})"
            );
            assert_eq!(
                c.range_count(lo, hi).0,
                c.range_count_scalar(lo, hi).0,
                "count[{lo},{hi})"
            );
        }
    }
}
