//! Codec-aware scan kernels: `count / select / sum` directly over encoded
//! fragments, **without decompression** (§6.2).
//!
//! Each codec reduces a value-space predicate `[lo, hi)` to a cheaper
//! predicate over its encoded representation:
//!
//! * **Frame-of-reference** — the bounds are rebased once
//!   (`lo_off = lo − base`, `hi_off = hi − base`) and the packed offset
//!   lane is scanned with the same single wrapping compare as the plain
//!   kernels — but streaming 1/2/4 bytes per value instead of 8, which is
//!   the paper's "less overall data movement" made concrete. Through the
//!   [`crate::simd`] dispatch the narrow widths also multiply *lane
//!   density*: one AVX-512 compare covers 64 u8 offsets vs 8 plain u64
//!   values — the largest measured speedup in the codebase
//!   (see `BENCH_scan.json`).
//! * **Dictionary** — the sorted dictionary rewrites both bounds into code
//!   space (`lower_bound_code`), so a value range *stays* a range and the
//!   packed code lane scans branchlessly; equality either resolves to one
//!   exact code or to a guaranteed miss without touching the lane at all.
//! * **RLE** — sorted runs make every range predicate pure *run
//!   arithmetic*: two binary searches plus a prefix-sum subtraction, O(log
//!   runs) with no per-value work whatsoever.
//!
//! [`Fragment`] packages the three codecs behind one dispatch point for the
//! chunk read paths; every kernel is property-tested bit-exact against
//! `decode()` + the scalar baselines (see `tests/compressed_scan.rs`).

use crate::compress::dictionary::{Dictionary, PackedCodes};
use crate::compress::for_delta::{ForBlock, PackedOffsets};
use crate::compress::rle::Rle;
use crate::compress::{Codec, StorageMode};
use crate::kernels::{LANE_WIDTH, SELECT_SUBCHUNK};
use crate::simd::SimdElem;
use crate::value::ColumnValue;

/// Dispatch a closure-like body over the packed offset widths.
macro_rules! with_offsets {
    ($packed:expr, |$lane:ident| $body:expr) => {
        match $packed {
            PackedOffsets::U8($lane) => $body,
            PackedOffsets::U16($lane) => $body,
            PackedOffsets::U32($lane) => $body,
            PackedOffsets::U64($lane) => $body,
        }
    };
}

/// Dispatch a closure-like body over the packed code widths.
macro_rules! with_codes {
    ($packed:expr, |$lane:ident| $body:expr) => {
        match $packed {
            PackedCodes::U8($lane) => $body,
            PackedCodes::U16($lane) => $body,
            PackedCodes::U32($lane) => $body,
        }
    };
}

// ---------------------------------------------------------------------
// Generic rebased inner loops (monomorphized per packed width)
// ---------------------------------------------------------------------

/// A widened `[lo, lo + span)` predicate clamped into lane width.
///
/// The rebased predicates are clamped into the lane's native width *before*
/// the loop, so the inner compares run at full SIMD density (64 u8 lanes
/// per AVX-512 compare, not 8 widened u64s) — narrowing the storage must
/// also narrow the arithmetic, or the §6.2 byte savings evaporate into
/// conversion work. The clamp also establishes the SIMD window contract
/// `lo + span <= 2^BITS`, which makes the wrapped unsigned compare exact.
enum LanePredicate<T> {
    /// The window misses the lane's domain entirely.
    Empty,
    /// The window covers the lane's whole domain: everything matches.
    All,
    /// Proper window: `x - lo < span` in wrapping lane arithmetic.
    Window(T, T),
}

#[inline]
fn clamp_predicate<T: SimdElem>(lo: u64, span: u64) -> LanePredicate<T> {
    if span == 0 || lo > T::MAX_WIDE {
        return LanePredicate::Empty;
    }
    let hi = lo.saturating_add(span);
    if hi > T::MAX_WIDE {
        // The upper end exceeds the domain: `x >= lo` suffices, expressed
        // as the in-domain window `[lo, MAX]` of span `MAX - lo + 1`
        // (degenerating to All when lo is 0).
        if lo == 0 {
            LanePredicate::All
        } else {
            LanePredicate::Window(T::narrow(lo), T::narrow(T::MAX_WIDE - lo + 1))
        }
    } else {
        LanePredicate::Window(T::narrow(lo), T::narrow(hi - lo))
    }
}

/// Count of lane entries in `[lo, lo + span)` (dispatched SIMD).
#[inline]
fn count_rebased<T: SimdElem>(lane: &[T], lo: u64, span: u64) -> u64 {
    match clamp_predicate::<T>(lo, span) {
        LanePredicate::Empty => 0,
        LanePredicate::All => lane.len() as u64,
        LanePredicate::Window(l, s) => T::count_window(lane, l, s),
    }
}

/// Count of lane entries equal to `target` (widened; dispatched SIMD).
#[inline]
fn count_eq_lane<T: SimdElem>(lane: &[T], target: u64) -> u64 {
    if target > T::MAX_WIDE {
        return 0;
    }
    T::count_eq(lane, T::narrow(target))
}

/// Bitmap-evaluate `[lo, lo + span)` over the lane; always emits
/// `lane.len().div_ceil(64)` words, zeroed when the window misses.
fn bitmap_rebased<T: SimdElem>(lane: &[T], lo: u64, span: u64, out: &mut Vec<u64>) -> u64 {
    match clamp_predicate::<T>(lo, span) {
        LanePredicate::Empty => {
            out.extend(std::iter::repeat_n(0, lane.len().div_ceil(LANE_WIDTH)));
            0
        }
        LanePredicate::All => bitmap_fill_range(lane.len(), 0, lane.len(), out),
        LanePredicate::Window(l, s) => T::bitmap_window(lane, l, s, out),
    }
}

/// Fused rebased filter + payload aggregation (the compressed HAP Q3 loop).
#[inline]
fn sum_rebased<T: SimdElem>(lane: &[T], payload: &[u32], lo: u64, span: u64) -> (u64, u64) {
    debug_assert_eq!(lane.len(), payload.len());
    match clamp_predicate::<T>(lo, span) {
        LanePredicate::Empty => (0, 0),
        LanePredicate::All => (lane.len() as u64, crate::simd::sum_u32(payload)),
        LanePredicate::Window(l, s) => T::sum_window(lane, payload, l, s),
    }
}

/// Append positions (offset by `base`) of lane entries equal to `target`.
///
/// Count-then-collect per sub-chunk, like the plain
/// [`crate::kernels::select_eq_into`]: the SIMD equality count skips
/// matchless sub-chunks at full scan rate; only sub-chunks holding a match
/// pay the position-materializing scalar pass.
fn select_eq_lane<T: SimdElem>(lane: &[T], target: u64, base: usize, out: &mut Vec<usize>) {
    if target > T::MAX_WIDE {
        return;
    }
    let t = T::narrow(target);
    for (ci, chunk) in lane.chunks(SELECT_SUBCHUNK).enumerate() {
        if T::count_eq(chunk, t) == 0 {
            continue;
        }
        let chunk_base = base + ci * SELECT_SUBCHUNK;
        for (i, &x) in chunk.iter().enumerate() {
            if x == t {
                out.push(chunk_base + i);
            }
        }
    }
}

/// Emit `n.div_ceil(64)` bitmap words with exactly bits `[a, b)` set —
/// the contiguous-run bitmap RLE fragments and degenerate ranges produce.
pub fn bitmap_fill_range(n: usize, a: usize, b: usize, out: &mut Vec<u64>) -> u64 {
    debug_assert!(a <= b && b <= n);
    let mask_below = |k: usize| -> u64 {
        if k >= LANE_WIDTH {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    };
    for w in 0..n.div_ceil(LANE_WIDTH) {
        let word_start = w * LANE_WIDTH;
        let lo_bit = a.saturating_sub(word_start).min(LANE_WIDTH);
        let hi_bit = b.saturating_sub(word_start).min(LANE_WIDTH);
        out.push(mask_below(hi_bit) & !mask_below(lo_bit));
    }
    (b - a) as u64
}

// ---------------------------------------------------------------------
// Frame-of-reference kernels
// ---------------------------------------------------------------------

/// Rebase `[lo, hi)` into offset space: `Some((lo_off, span))`, or `None`
/// when the range is degenerate or entirely below the frame base.
#[inline]
fn for_rebase<K: ColumnValue>(frag: &ForBlock<K>, lo: K, hi: K) -> Option<(u64, u64)> {
    let lo = lo.to_ordered_u64();
    let hi = hi.to_ordered_u64();
    if hi <= lo || hi <= frag.base() {
        return None;
    }
    let lo_off = lo.saturating_sub(frag.base());
    Some((lo_off, (hi - frag.base()) - lo_off))
}

/// Count FoR-encoded values equal to `v` (rebased equality on the packed
/// offsets).
pub fn for_count_eq<K: ColumnValue>(frag: &ForBlock<K>, v: K) -> u64 {
    let ord = v.to_ordered_u64();
    if ord < frag.base() {
        return 0;
    }
    let target = ord - frag.base();
    with_offsets!(frag.offsets(), |lane| count_eq_lane(lane, target))
}

/// Count FoR-encoded values in `[lo, hi)` without decoding.
pub fn for_count_range<K: ColumnValue>(frag: &ForBlock<K>, lo: K, hi: K) -> u64 {
    match for_rebase(frag, lo, hi) {
        Some((lo_off, span)) => {
            with_offsets!(frag.offsets(), |lane| count_rebased(lane, lo_off, span))
        }
        None => 0,
    }
}

/// Bitmap-select `[lo, hi)` over a FoR fragment (bit `i` ⇔ encoded
/// position `i`, which equals the source-slice position). Returns the
/// match count.
pub fn for_select_range_bitmap<K: ColumnValue>(
    frag: &ForBlock<K>,
    lo: K,
    hi: K,
    out: &mut Vec<u64>,
) -> u64 {
    match for_rebase(frag, lo, hi) {
        Some((lo_off, span)) => {
            with_offsets!(frag.offsets(), |lane| bitmap_rebased(
                lane, lo_off, span, out
            ))
        }
        None => bitmap_fill_range(frag.len(), 0, 0, out),
    }
}

/// Fused filter + payload sum over a FoR fragment; `payload` is aligned to
/// the encoded order. Returns `(matched, sum)`.
pub fn for_sum_payload_range<K: ColumnValue>(
    frag: &ForBlock<K>,
    payload: &[u32],
    lo: K,
    hi: K,
) -> (u64, u64) {
    match for_rebase(frag, lo, hi) {
        Some((lo_off, span)) => {
            with_offsets!(frag.offsets(), |lane| sum_rebased(
                lane, payload, lo_off, span
            ))
        }
        None => (0, 0),
    }
}

// ---------------------------------------------------------------------
// Dictionary kernels (code-space predicate rewriting)
// ---------------------------------------------------------------------

/// Rewrite `[lo, hi)` into code space: `Some((lo_code, span))`, or `None`
/// when no dictionary entry falls inside.
#[inline]
fn dict_rebase<K: ColumnValue>(frag: &Dictionary<K>, lo: K, hi: K) -> Option<(u64, u64)> {
    if hi <= lo {
        return None;
    }
    let lo_c = u64::from(frag.lower_bound_code(lo));
    let hi_c = u64::from(frag.lower_bound_code(hi));
    (hi_c > lo_c).then_some((lo_c, hi_c - lo_c))
}

/// Count dictionary-encoded values equal to `v`. A value absent from the
/// dictionary is a guaranteed miss — the code lane is never touched.
pub fn dict_count_eq<K: ColumnValue>(frag: &Dictionary<K>, v: K) -> u64 {
    match frag.exact_code(v) {
        Some(code) => with_codes!(frag.codes(), |lane| count_eq_lane(lane, u64::from(code))),
        None => 0,
    }
}

/// Count dictionary-encoded values in `[lo, hi)` via the code-space
/// rewrite.
pub fn dict_count_range<K: ColumnValue>(frag: &Dictionary<K>, lo: K, hi: K) -> u64 {
    match dict_rebase(frag, lo, hi) {
        Some((lo_c, span)) => with_codes!(frag.codes(), |lane| count_rebased(lane, lo_c, span)),
        None => 0,
    }
}

/// Bitmap-select `[lo, hi)` over a dictionary fragment (bit `i` ⇔ encoded
/// position `i` = source-slice position). Returns the match count.
pub fn dict_select_range_bitmap<K: ColumnValue>(
    frag: &Dictionary<K>,
    lo: K,
    hi: K,
    out: &mut Vec<u64>,
) -> u64 {
    match dict_rebase(frag, lo, hi) {
        Some((lo_c, span)) => {
            with_codes!(frag.codes(), |lane| bitmap_rebased(lane, lo_c, span, out))
        }
        None => bitmap_fill_range(frag.len(), 0, 0, out),
    }
}

/// Fused filter + payload sum over a dictionary fragment.
pub fn dict_sum_payload_range<K: ColumnValue>(
    frag: &Dictionary<K>,
    payload: &[u32],
    lo: K,
    hi: K,
) -> (u64, u64) {
    match dict_rebase(frag, lo, hi) {
        Some((lo_c, span)) => {
            with_codes!(frag.codes(), |lane| sum_rebased(lane, payload, lo_c, span))
        }
        None => (0, 0),
    }
}

// ---------------------------------------------------------------------
// RLE kernels (run arithmetic)
// ---------------------------------------------------------------------

/// Count RLE-encoded values equal to `v`: one binary search, one run
/// length.
pub fn rle_count_eq<K: ColumnValue>(frag: &Rle<K>, v: K) -> u64 {
    match frag.runs().binary_search_by(|&(rv, _)| rv.cmp(&v)) {
        Ok(r) => u64::from(frag.runs()[r].1),
        Err(_) => 0,
    }
}

/// Count RLE-encoded values in `[lo, hi)`: two binary searches and a
/// prefix-sum subtraction — O(log runs), no per-value work.
pub fn rle_count_range<K: ColumnValue>(frag: &Rle<K>, lo: K, hi: K) -> u64 {
    let (a, b) = frag.index_range(lo, hi);
    b - a
}

/// Bitmap-select `[lo, hi)` over an RLE fragment. Because the runs are
/// sorted, the qualifying encoded positions form one contiguous run of set
/// bits. Bit `i` refers to the *encoded* (sorted) order, not the source
/// slot order.
pub fn rle_select_range_bitmap<K: ColumnValue>(
    frag: &Rle<K>,
    lo: K,
    hi: K,
    out: &mut Vec<u64>,
) -> u64 {
    let (a, b) = frag.index_range(lo, hi);
    bitmap_fill_range(frag.len(), a as usize, b as usize, out)
}

/// Fused filter + payload sum over an RLE fragment; `payload` is aligned
/// to the encoded (sorted) order, so the qualifying slice is contiguous.
pub fn rle_sum_payload_range<K: ColumnValue>(
    frag: &Rle<K>,
    payload: &[u32],
    lo: K,
    hi: K,
) -> (u64, u64) {
    debug_assert_eq!(frag.len(), payload.len());
    let (a, b) = frag.index_range(lo, hi);
    let sum = payload[a as usize..b as usize]
        .iter()
        .map(|&p| u64::from(p))
        .sum();
    (b - a, sum)
}

// ---------------------------------------------------------------------
// Fragment: the chunk-facing dispatch point
// ---------------------------------------------------------------------

/// One partition's encoded storage, behind a single dispatch point for the
/// chunk read paths.
///
/// FoR and dictionary fragments preserve the source slice order, so bitmap
/// bit `i` / encoded position `i` maps 1:1 onto physical slot `start + i`
/// and position-producing reads (point queries, range selects) run directly
/// on the encoded lane. RLE re-sorts, so it only accelerates order-free
/// aggregation (counts); position paths fall back to the plain slots.
#[derive(Debug, Clone)]
pub enum Fragment<K: ColumnValue> {
    /// Frame-of-reference packed offsets.
    For(ForBlock<K>),
    /// Order-preserving dictionary codes.
    Dict(Dictionary<K>),
    /// Run-length encoded (sorted copy of the values).
    Rle(Rle<K>),
}

impl<K: ColumnValue> Fragment<K> {
    /// Encode `values` under `mode`; `Plain` yields `None`. RLE sorts a
    /// copy (its §6.2 precondition).
    pub fn encode(mode: StorageMode, values: &[K]) -> Option<Self> {
        match mode {
            StorageMode::Plain => None,
            StorageMode::For => Some(Fragment::For(ForBlock::encode(values))),
            StorageMode::Dict => Some(Fragment::Dict(Dictionary::encode(values))),
            StorageMode::Rle => {
                let mut sorted = values.to_vec();
                sorted.sort_unstable();
                Some(Fragment::Rle(Rle::encode(&sorted)))
            }
        }
    }

    /// The storage mode this fragment implements.
    pub fn mode(&self) -> StorageMode {
        match self {
            Fragment::For(_) => StorageMode::For,
            Fragment::Dict(_) => StorageMode::Dict,
            Fragment::Rle(_) => StorageMode::Rle,
        }
    }

    /// Number of encoded values.
    pub fn len(&self) -> usize {
        match self {
            Fragment::For(f) => f.len(),
            Fragment::Dict(f) => f.len(),
            Fragment::Rle(f) => f.len(),
        }
    }

    /// Whether the fragment holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encoded payload size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        match self {
            Fragment::For(f) => f.encoded_bytes(),
            Fragment::Dict(f) => f.encoded_bytes(),
            Fragment::Rle(f) => f.encoded_bytes(),
        }
    }

    /// Decode back to plain values (in encoded order).
    pub fn decode(&self) -> Vec<K> {
        match self {
            Fragment::For(f) => f.decode(),
            Fragment::Dict(f) => f.decode(),
            Fragment::Rle(f) => f.decode(),
        }
    }

    /// Whether encoded position `i` equals source-slice position `i`
    /// (true for FoR/dictionary, false for RLE which sorts).
    pub fn preserves_slot_order(&self) -> bool {
        !matches!(self, Fragment::Rle(_))
    }

    /// Count encoded values equal to `v`.
    pub fn count_eq(&self, v: K) -> u64 {
        match self {
            Fragment::For(f) => for_count_eq(f, v),
            Fragment::Dict(f) => dict_count_eq(f, v),
            Fragment::Rle(f) => rle_count_eq(f, v),
        }
    }

    /// Count encoded values in `[lo, hi)`.
    pub fn count_range(&self, lo: K, hi: K) -> u64 {
        match self {
            Fragment::For(f) => for_count_range(f, lo, hi),
            Fragment::Dict(f) => dict_count_range(f, lo, hi),
            Fragment::Rle(f) => rle_count_range(f, lo, hi),
        }
    }

    /// Bitmap-select `[lo, hi)` (bit `i` ⇔ encoded position `i`). Returns
    /// the match count.
    pub fn select_range_bitmap(&self, lo: K, hi: K, out: &mut Vec<u64>) -> u64 {
        match self {
            Fragment::For(f) => for_select_range_bitmap(f, lo, hi, out),
            Fragment::Dict(f) => dict_select_range_bitmap(f, lo, hi, out),
            Fragment::Rle(f) => rle_select_range_bitmap(f, lo, hi, out),
        }
    }

    /// Append the slot positions (offset by `base`) of encoded values equal
    /// to `v`. Returns `false` (leaving `out` untouched) when the fragment
    /// does not preserve slot order — the caller falls back to the plain
    /// slots.
    pub fn select_eq_positions(&self, v: K, base: usize, out: &mut Vec<usize>) -> bool {
        match self {
            Fragment::For(f) => {
                let ord = v.to_ordered_u64();
                if ord >= f.base() {
                    let target = ord - f.base();
                    with_offsets!(f.offsets(), |lane| select_eq_lane(lane, target, base, out));
                }
                true
            }
            Fragment::Dict(f) => {
                if let Some(code) = f.exact_code(v) {
                    with_codes!(f.codes(), |lane| select_eq_lane(
                        lane,
                        u64::from(code),
                        base,
                        out
                    ));
                }
                true
            }
            Fragment::Rle(_) => false,
        }
    }

    /// Fused filter + payload sum over `[lo, hi)`; `payload` must be
    /// aligned to the encoded order. Returns `(matched, sum)`.
    pub fn sum_payload_range(&self, payload: &[u32], lo: K, hi: K) -> (u64, u64) {
        match self {
            Fragment::For(f) => for_sum_payload_range(f, payload, lo, hi),
            Fragment::Dict(f) => dict_sum_payload_range(f, payload, lo, hi),
            Fragment::Rle(f) => rle_sum_payload_range(f, payload, lo, hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<u64> {
        (0..150u64).map(|i| 1000 + (i * 37) % 100).collect()
    }

    fn reference_count(vals: &[u64], lo: u64, hi: u64) -> u64 {
        vals.iter().filter(|&&x| lo <= x && x < hi).count() as u64
    }

    #[test]
    fn fragment_kernels_match_reference_per_codec() {
        let vals = data();
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for mode in [StorageMode::For, StorageMode::Dict, StorageMode::Rle] {
            let frag = Fragment::encode(mode, &vals).expect("compressed mode");
            let ref_vals = if frag.preserves_slot_order() {
                &vals
            } else {
                &sorted
            };
            assert_eq!(frag.decode(), *ref_vals, "{mode:?} decode order");
            for (lo, hi) in [
                (0u64, 2000),
                (1010, 1060),
                (1050, 1051),
                (990, 1000),
                (1060, 1010),
            ] {
                assert_eq!(
                    frag.count_range(lo, hi),
                    reference_count(ref_vals, lo, hi),
                    "{mode:?} count [{lo},{hi})"
                );
                let mut mask = Vec::new();
                let matched = frag.select_range_bitmap(lo, hi, &mut mask);
                assert_eq!(mask.len(), vals.len().div_ceil(LANE_WIDTH), "{mode:?}");
                assert_eq!(matched, reference_count(ref_vals, lo, hi), "{mode:?}");
                let from_bits: u64 = mask.iter().map(|w| u64::from(w.count_ones())).sum();
                assert_eq!(from_bits, matched, "{mode:?} bitmap popcount");
                for (i, x) in ref_vals.iter().enumerate() {
                    let bit = (mask[i / LANE_WIDTH] >> (i % LANE_WIDTH)) & 1;
                    assert_eq!(bit == 1, lo <= *x && *x < hi, "{mode:?} bit {i}");
                }
            }
            for v in [1000u64, 1042, 999, 2000] {
                assert_eq!(
                    frag.count_eq(v),
                    vals.iter().filter(|&&x| x == v).count() as u64,
                    "{mode:?} eq {v}"
                );
            }
        }
    }

    #[test]
    fn fused_sum_matches_scalar_per_codec() {
        let vals = data();
        let payload: Vec<u32> = (0..vals.len() as u32).map(|i| i * 3 + 1).collect();
        for mode in [StorageMode::For, StorageMode::Dict, StorageMode::Rle] {
            let frag = Fragment::encode(mode, &vals).expect("compressed mode");
            let enc = frag.decode();
            // Align the payload to the encoded order (identity for For/Dict).
            let enc_payload: Vec<u32> = if frag.preserves_slot_order() {
                payload.clone()
            } else {
                let mut perm: Vec<u32> = (0..vals.len() as u32).collect();
                perm.sort_by_key(|&i| vals[i as usize]);
                perm.iter().map(|&i| payload[i as usize]).collect()
            };
            for (lo, hi) in [(0u64, 2000), (1010, 1060), (1060, 1010), (1042, 1043)] {
                let (m, s) = frag.sum_payload_range(&enc_payload, lo, hi);
                let want_m = reference_count(&enc, lo, hi);
                let want_s: u64 = enc
                    .iter()
                    .zip(&enc_payload)
                    .filter(|(&k, _)| lo <= k && k < hi)
                    .map(|(_, &p)| u64::from(p))
                    .sum();
                assert_eq!((m, s), (want_m, want_s), "{mode:?} [{lo},{hi})");
            }
        }
    }

    #[test]
    fn select_eq_positions_respects_slot_order() {
        let vals = data();
        let v = vals[7];
        let want: Vec<usize> = vals
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == v)
            .map(|(i, _)| 500 + i)
            .collect();
        for mode in [StorageMode::For, StorageMode::Dict] {
            let frag = Fragment::encode(mode, &vals).expect("compressed");
            let mut out = Vec::new();
            assert!(frag.select_eq_positions(v, 500, &mut out), "{mode:?}");
            assert_eq!(out, want, "{mode:?}");
        }
        let rle = Fragment::encode(StorageMode::Rle, &vals).expect("compressed");
        let mut out = Vec::new();
        assert!(!rle.select_eq_positions(v, 500, &mut out));
        assert!(out.is_empty());
    }

    #[test]
    fn bitmap_fill_range_shapes() {
        let mut out = Vec::new();
        assert_eq!(bitmap_fill_range(130, 63, 66, &mut out), 3);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0], 1u64 << 63);
        assert_eq!(out[1], 0b11);
        assert_eq!(out[2], 0);
        out.clear();
        assert_eq!(bitmap_fill_range(64, 0, 64, &mut out), 64);
        assert_eq!(out, vec![u64::MAX]);
        out.clear();
        assert_eq!(bitmap_fill_range(10, 0, 0, &mut out), 0);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn empty_fragments_answer_zero() {
        for mode in [StorageMode::For, StorageMode::Dict, StorageMode::Rle] {
            let frag = Fragment::encode(mode, &[] as &[u64]).expect("compressed");
            assert!(frag.is_empty());
            assert_eq!(frag.count_range(0, u64::MAX), 0);
            assert_eq!(frag.count_eq(0), 0);
            let mut mask = Vec::new();
            assert_eq!(frag.select_range_bitmap(0, 10, &mut mask), 0);
            assert!(mask.is_empty());
            assert_eq!(frag.sum_payload_range(&[], 0, 10), (0, 0));
        }
    }
}
