//! Branchless, batch-oriented scan kernels — the tight loops behind every
//! read path of the partitioned chunk.
//!
//! The paper's performance argument (§3–§4) assumes partition scans run "as
//! fast as the hardware allows": point queries fully scan exactly one
//! partition, range queries filter only the first/last overlapping
//! partitions. These kernels make that true in practice:
//!
//! * predicates are evaluated by the **explicit SIMD layer** in
//!   [`crate::simd`] — AVX-512 / AVX2 intrinsics selected once at startup
//!   by runtime CPU detection, with a portable branchless-scalar fallback —
//!   so the binary is ISA-portable and the inner-loop cost does not depend
//!   on match selectivity;
//! * values are processed in **fixed-width lanes** of [`LANE_WIDTH`]
//!   values, one `u64` bitmap word per lane, instead of per-value
//!   `Vec::push`;
//! * qualifying positions are decoded from bitmap words with
//!   count-trailing-zeros iteration, and masked payload aggregation
//!   ([`sum_payload_masked`]) consumes the words directly without ever
//!   materializing a position list.
//!
//! # From typed values to SIMD lanes
//!
//! The kernels are generic over [`ColumnValue`], but the SIMD layer scans
//! raw unsigned lanes. The bridge is two exact rewrites:
//!
//! 1. the two-sided test `x ∈ [lo, hi)` collapses to one unsigned compare
//!    through the order-preserving `u64` mapping:
//!    `ord(x) - ord(lo) < ord(hi) - ord(lo)` in wrapping arithmetic;
//! 2. because the sign-flip of `to_ordered_u64` is congruent to adding the
//!    sign bit mod 2^BITS, that wrapped difference is *identical* computed
//!    on raw bit patterns in native width
//!    ([`ColumnValue::lane_bits`]) — `i32` lanes scan as `u32` lanes with
//!    zero per-element conversion work.
//!
//! The [`zone`] submodule provides the per-partition min/max zone maps that
//! let the read paths in [`crate::ops`] prune partitions before any of
//! these kernels touch data. The [`compressed`] submodule carries the same
//! kernel surface (`count_eq` / `count_range` / `select_range_bitmap` /
//! `sum_payload_range`) over the §6.2 codecs — FoR, dictionary, RLE —
//! operating directly on the encoded representations, no decode step
//! (their u8/u16 packed lanes are where the SIMD lane density pays most:
//! 64/32 values per AVX-512 compare).
//!
//! Every kernel has a pure-scalar reference twin in
//! [`crate::ops::scalar`]; property tests assert bit-exact result
//! equivalence (including against the forced-scalar dispatch level) and
//! `casper-bench`'s `scan_ops` bench tracks the speedup in
//! `BENCH_scan.json`.

pub mod compressed;
pub mod zone;

pub use compressed::Fragment;
pub use zone::ZoneMap;

use crate::simd::{self, SimdElem};
use crate::value::ColumnValue;

/// Values per lane: one bitmap word (`u64`) describes one lane.
pub const LANE_WIDTH: usize = 64;

/// Values per count-then-collect sub-chunk in [`select_eq_into`]: large
/// enough that the vectorized count pass dominates, small enough that the
/// scalar collect pass over a matching sub-chunk stays cheap.
pub(crate) const SELECT_SUBCHUNK: usize = 1024;

/// Count live values equal to `v`.
///
/// Dispatched SIMD equality count over the raw-bits lane (equality is
/// bit-pattern equality for every [`ColumnValue`]).
#[inline]
pub fn count_eq<K: ColumnValue>(lane: &[K], v: K) -> u64 {
    SimdElem::count_eq(K::lane_bits(lane), v.to_bits())
}

/// Count live values in the half-open interval `[lo, hi)`.
///
/// The two-sided test collapses to a *single* unsigned compare through the
/// order-preserving `u64` mapping: `x ∈ [lo, hi)` ⇔
/// `ord(x) - ord(lo) < ord(hi) - ord(lo)` in wrapping arithmetic — and that
/// wrapped difference is identical on raw bits in native lane width, which
/// is what the SIMD window kernel evaluates.
#[inline]
pub fn count_range<K: ColumnValue>(lane: &[K], lo: K, hi: K) -> u64 {
    if hi <= lo {
        return 0;
    }
    let span = hi.to_ordered_u64().wrapping_sub(lo.to_ordered_u64());
    SimdElem::count_window(K::lane_bits(lane), lo.to_bits(), K::Bits::narrow(span))
}

/// Find the minimum and maximum of a slice in one vectorized pass.
/// Returns `None` for an empty slice.
///
/// The SIMD layer compares unsigned; XORing with the sign mask (the raw
/// bits of `K::MIN_VALUE` — zero for unsigned types) normalizes signed
/// lanes into unsigned order, and the same XOR maps the extrema back.
#[inline]
pub fn min_max<K: ColumnValue>(lane: &[K]) -> Option<(K, K)> {
    let flip = K::MIN_VALUE.to_bits();
    let (lo, hi) = SimdElem::min_max_flipped(K::lane_bits(lane), flip)?;
    // Results arrive in the flipped (order-normalized) domain; the same
    // XOR maps them back to raw bits.
    let unflip = |v: K::Bits| K::from_bits(K::Bits::narrow(v.widen() ^ flip.widen()));
    Some((unflip(lo), unflip(hi)))
}

/// Append the positions (offset by `base`) of every value equal to `v`.
///
/// Count-then-collect per sub-chunk: a vectorized [`count_eq`] pass decides
/// whether a sub-chunk holds any match at all; only matching sub-chunks
/// (rare — point queries touch a handful of duplicates in one partition)
/// pay the position-materializing collect pass. Misses therefore run at the
/// full branchless scan rate with zero output work. The collect pass is
/// itself dispatched ([`crate::simd::SimdElem::select_eq_positions`]): on
/// AVX-512 matching sub-chunk positions are emitted with `vpcompressd`
/// compress-stores instead of a per-element branch.
pub fn select_eq_into<K: ColumnValue>(lane: &[K], v: K, base: usize, out: &mut Vec<usize>) {
    let bits = K::lane_bits(lane);
    let target = v.to_bits();
    let mut scratch: Vec<u32> = Vec::new();
    for (ci, chunk) in bits.chunks(SELECT_SUBCHUNK).enumerate() {
        let hits = SimdElem::count_eq(chunk, target);
        if hits == 0 {
            continue;
        }
        scratch.clear();
        scratch.reserve(hits as usize);
        SimdElem::select_eq_positions(chunk, target, 0, &mut scratch);
        let chunk_base = base + ci * SELECT_SUBCHUNK;
        out.reserve(scratch.len());
        out.extend(scratch.iter().map(|&p| chunk_base + p as usize));
    }
}

/// Evaluate `[lo, hi)` over the lane, appending one bitmap word per
/// [`LANE_WIDTH`] values (bit `i` of word `w` ⇔ `lane[w * 64 + i]`
/// qualifies; a final partial lane produces a zero-padded word). Returns the
/// number of qualifying values.
///
/// This is the compare→movemask→word-packing path: on AVX-512 a u8 lane
/// produces one full word per compare; on AVX2 the movemask bits are packed
/// into words; the portable fallback shifts bools.
pub fn select_range_bitmap<K: ColumnValue>(lane: &[K], lo: K, hi: K, out: &mut Vec<u64>) -> u64 {
    if hi <= lo {
        out.extend(std::iter::repeat_n(0, lane.len().div_ceil(LANE_WIDTH)));
        return 0;
    }
    let span = hi.to_ordered_u64().wrapping_sub(lo.to_ordered_u64());
    SimdElem::bitmap_window(K::lane_bits(lane), lo.to_bits(), K::Bits::narrow(span), out)
}

/// Fused filter + aggregate: over every `i` where `keys[i] ∈ [lo, hi)`,
/// count the match and sum `payload[i]` (widened) in one masked pass — no
/// bitmap materialization, no position list (HAP Q3's hot loop). Returns
/// `(matched, sum)` so callers need no separate counting pass over the key
/// lane.
pub fn sum_payload_range<K: ColumnValue>(keys: &[K], payload: &[u32], lo: K, hi: K) -> (u64, u64) {
    debug_assert_eq!(keys.len(), payload.len());
    if hi <= lo {
        return (0, 0);
    }
    let span = hi.to_ordered_u64().wrapping_sub(lo.to_ordered_u64());
    SimdElem::sum_window(
        K::lane_bits(keys),
        payload,
        lo.to_bits(),
        K::Bits::narrow(span),
    )
}

/// Sum `payload[i]` (widened to `u64`) for every position `i` whose bit is
/// set in the bitmap produced by [`select_range_bitmap`] over the same
/// lane. Positions beyond `payload.len()` must be clear in the mask.
/// Dense words (all 64 bits set) take a vectorized straight-line sum.
#[inline]
pub fn sum_payload_masked(payload: &[u32], mask: &[u64]) -> u64 {
    simd::sum_payload_masked(payload, mask)
}

/// Invoke `f(position, value)` for every set bit of `mask`, where bit `i`
/// corresponds to `lane[i]` at chunk position `base + i`.
pub fn for_each_match<K: ColumnValue>(
    lane: &[K],
    mask: &[u64],
    base: usize,
    mut f: impl FnMut(usize, K),
) {
    for (w, &word) in mask.iter().enumerate() {
        let lane_base = w * LANE_WIDTH;
        let mut bits = word;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            let off = lane_base + bit;
            f(base + off, lane[off]);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane() -> Vec<u64> {
        // 150 values (2 full lanes + partial), shuffled-ish with duplicates.
        (0..150u64).map(|i| (i * 37) % 100).collect()
    }

    #[test]
    fn count_eq_matches_filter() {
        let data = lane();
        for v in [0u64, 13, 99, 250] {
            let want = data.iter().filter(|&&x| x == v).count() as u64;
            assert_eq!(count_eq(&data, v), want, "v={v}");
        }
        assert_eq!(count_eq::<u64>(&[], 5), 0);
    }

    #[test]
    fn count_range_matches_filter() {
        let data = lane();
        for (lo, hi) in [(0u64, 100), (10, 10), (30, 20), (5, 60), (90, 1000)] {
            let want = data.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
            assert_eq!(count_range(&data, lo, hi), want, "[{lo}, {hi})");
        }
    }

    #[test]
    fn min_max_matches_iterator() {
        let data = lane();
        let (lo, hi) = min_max(&data).unwrap();
        assert_eq!(lo, *data.iter().min().unwrap());
        assert_eq!(hi, *data.iter().max().unwrap());
        assert_eq!(min_max::<u64>(&[]), None);
        assert_eq!(min_max(&[7u64]), Some((7, 7)));
    }

    #[test]
    fn select_eq_positions_with_base_offset() {
        let data = lane();
        let mut out = Vec::new();
        select_eq_into(&data, 13, 1000, &mut out);
        let want: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == 13)
            .map(|(i, _)| 1000 + i)
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn bitmap_width_and_count() {
        let data = lane(); // 150 values → 3 words
        let mut mask = Vec::new();
        let matched = select_range_bitmap(&data, 20, 70, &mut mask);
        assert_eq!(mask.len(), 3);
        let want = data.iter().filter(|&&x| (20..70).contains(&x)).count() as u64;
        assert_eq!(matched, want);
        assert_eq!(
            mask.iter().map(|w| w.count_ones() as u64).sum::<u64>(),
            want
        );
        // Padding bits of the final partial lane must be clear.
        assert_eq!(mask[2] >> (150 - 2 * LANE_WIDTH), 0);
    }

    #[test]
    fn masked_sum_equals_scalar_sum() {
        let keys = lane();
        let payload: Vec<u32> = (0..keys.len() as u32).map(|i| i * 3 + 1).collect();
        let mut mask = Vec::new();
        select_range_bitmap(&keys, 25, 75, &mut mask);
        let want: u64 = keys
            .iter()
            .zip(&payload)
            .filter(|(&k, _)| (25..75).contains(&k))
            .map(|(_, &p)| u64::from(p))
            .sum();
        assert_eq!(sum_payload_masked(&payload, &mask), want);
    }

    #[test]
    fn fused_sum_matches_masked_sum_and_count() {
        let keys = lane();
        let payload: Vec<u32> = (0..keys.len() as u32).map(|i| i * 7 + 2).collect();
        for (lo, hi) in [(0u64, 100), (25, 75), (99, 99), (80, 10), (0, 1)] {
            let mut mask = Vec::new();
            let expected_count = select_range_bitmap(&keys, lo, hi, &mut mask);
            let (matched, sum) = sum_payload_range(&keys, &payload, lo, hi);
            assert_eq!(sum, sum_payload_masked(&payload, &mask), "[{lo}, {hi})");
            assert_eq!(matched, expected_count, "[{lo}, {hi}) count");
        }
    }

    #[test]
    fn select_eq_spanning_subchunk_boundary() {
        // Matches on both sides of the SELECT_SUBCHUNK boundary must all be
        // collected with correct global positions.
        let mut data = vec![0u64; SELECT_SUBCHUNK * 2 + 37];
        for &i in &[
            0usize,
            SELECT_SUBCHUNK - 1,
            SELECT_SUBCHUNK,
            SELECT_SUBCHUNK * 2 + 36,
        ] {
            data[i] = 42;
        }
        let mut out = Vec::new();
        select_eq_into(&data, 42, 10, &mut out);
        assert_eq!(
            out,
            vec![
                10,
                10 + SELECT_SUBCHUNK - 1,
                10 + SELECT_SUBCHUNK,
                10 + SELECT_SUBCHUNK * 2 + 36
            ]
        );
    }

    #[test]
    fn masked_sum_dense_lane_fast_path() {
        let payload: Vec<u32> = (0..128u32).collect();
        let mask = vec![u64::MAX, u64::MAX];
        assert_eq!(
            sum_payload_masked(&payload, &mask),
            (0..128u64).sum::<u64>()
        );
    }

    #[test]
    fn for_each_match_yields_positions_and_values() {
        let data = lane();
        let mut mask = Vec::new();
        select_range_bitmap(&data, 40, 45, &mut mask);
        let mut got = Vec::new();
        for_each_match(&data, &mask, 500, |pos, val| got.push((pos, val)));
        let want: Vec<(usize, u64)> = data
            .iter()
            .enumerate()
            .filter(|(_, &x)| (40..45).contains(&x))
            .map(|(i, &x)| (500 + i, x))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn kernels_handle_exact_lane_multiples() {
        let data: Vec<u64> = (0..128).collect();
        let mut mask = Vec::new();
        let m = select_range_bitmap(&data, 0, 128, &mut mask);
        assert_eq!(m, 128);
        assert_eq!(mask, vec![u64::MAX, u64::MAX]);
        let mut out = Vec::new();
        select_eq_into(&data, 127, 0, &mut out);
        assert_eq!(out, vec![127]);
    }
}
