//! Branchless, batch-oriented scan kernels — the tight loops behind every
//! read path of the partitioned chunk.
//!
//! The paper's performance argument (§3–§4) assumes partition scans run "as
//! fast as the hardware allows": point queries fully scan exactly one
//! partition, range queries filter only the first/last overlapping
//! partitions. These kernels make that true in practice:
//!
//! * predicates are evaluated **branchlessly** (`bool` → integer
//!   accumulation), so the inner loops auto-vectorize and their cost does
//!   not depend on match selectivity;
//! * values are processed in **fixed-width lanes** of [`LANE_WIDTH`]
//!   values, one `u64` bitmap word per lane, instead of per-value
//!   `Vec::push`;
//! * qualifying positions are decoded from bitmap words with
//!   count-trailing-zeros iteration, and masked payload aggregation
//!   ([`sum_payload_masked`]) consumes the words directly without ever
//!   materializing a position list.
//!
//! The [`zone`] submodule provides the per-partition min/max zone maps that
//! let the read paths in [`crate::ops`] prune partitions before any of
//! these kernels touch data. The [`compressed`] submodule carries the same
//! kernel surface (`count_eq` / `count_range` / `select_range_bitmap` /
//! `sum_payload_range`) over the §6.2 codecs — FoR, dictionary, RLE —
//! operating directly on the encoded representations, no decode step.
//!
//! Every kernel has a pure-scalar reference twin in
//! [`crate::ops::scalar`]; property tests assert bit-exact result
//! equivalence and `casper-bench`'s `scan_ops` bench tracks the speedup.

pub mod compressed;
pub mod zone;

pub use compressed::Fragment;
pub use zone::ZoneMap;

use crate::value::ColumnValue;

/// Values per lane: one bitmap word (`u64`) describes one lane.
pub const LANE_WIDTH: usize = 64;

/// Values per count-then-collect sub-chunk in [`select_eq_into`]: large
/// enough that the vectorized count pass dominates, small enough that the
/// scalar collect pass over a matching sub-chunk stays cheap.
const SELECT_SUBCHUNK: usize = 1024;

/// Count live values equal to `v`.
///
/// Branchless: the comparison result is accumulated as an integer, so the
/// loop body is identical for hits and misses and auto-vectorizes.
#[inline]
pub fn count_eq<K: ColumnValue>(lane: &[K], v: K) -> u64 {
    let mut acc = 0u64;
    for &x in lane {
        acc += u64::from(x == v);
    }
    acc
}

/// Count live values in the half-open interval `[lo, hi)`.
///
/// The two-sided test collapses to a *single* unsigned compare through the
/// order-preserving `u64` mapping: `x ∈ [lo, hi)` ⇔
/// `ord(x) - ord(lo) < ord(hi) - ord(lo)` in wrapping arithmetic — half the
/// comparison work per element and an easier auto-vectorization target.
#[inline]
pub fn count_range<K: ColumnValue>(lane: &[K], lo: K, hi: K) -> u64 {
    if hi <= lo {
        return 0;
    }
    let base = lo.to_ordered_u64();
    let span = hi.to_ordered_u64().wrapping_sub(base);
    let mut acc = 0u64;
    for &x in lane {
        acc += u64::from(x.to_ordered_u64().wrapping_sub(base) < span);
    }
    acc
}

/// Find the minimum and maximum of a slice in one branch-predictable pass.
/// Returns `None` for an empty slice.
#[inline]
pub fn min_max<K: ColumnValue>(lane: &[K]) -> Option<(K, K)> {
    let (&first, rest) = lane.split_first()?;
    let mut lo = first;
    let mut hi = first;
    for &x in rest {
        lo = if x < lo { x } else { lo };
        hi = if x > hi { x } else { hi };
    }
    Some((lo, hi))
}

/// Append the positions (offset by `base`) of every value equal to `v`.
///
/// Count-then-collect per sub-chunk: a vectorized [`count_eq`] pass decides
/// whether a sub-chunk holds any match at all; only matching sub-chunks
/// (rare — point queries touch a handful of duplicates in one partition)
/// pay the position-materializing scalar pass. Misses therefore run at the
/// full branchless scan rate with zero output work.
pub fn select_eq_into<K: ColumnValue>(lane: &[K], v: K, base: usize, out: &mut Vec<usize>) {
    for (ci, chunk) in lane.chunks(SELECT_SUBCHUNK).enumerate() {
        let hits = count_eq(chunk, v);
        if hits == 0 {
            continue;
        }
        out.reserve(hits as usize);
        let chunk_base = base + ci * SELECT_SUBCHUNK;
        for (i, &x) in chunk.iter().enumerate() {
            if x == v {
                out.push(chunk_base + i);
            }
        }
    }
}

/// Evaluate `[lo, hi)` over the lane, appending one bitmap word per
/// [`LANE_WIDTH`] values (bit `i` of word `w` ⇔ `lane[w * 64 + i]`
/// qualifies; a final partial lane produces a zero-padded word). Returns the
/// number of qualifying values.
pub fn select_range_bitmap<K: ColumnValue>(lane: &[K], lo: K, hi: K, out: &mut Vec<u64>) -> u64 {
    if hi <= lo {
        out.extend(std::iter::repeat_n(0, lane.len().div_ceil(LANE_WIDTH)));
        return 0;
    }
    let base = lo.to_ordered_u64();
    let span = hi.to_ordered_u64().wrapping_sub(base);
    let mut matched = 0u64;
    let mut chunks = lane.chunks_exact(LANE_WIDTH);
    for chunk in &mut chunks {
        let mut word = 0u64;
        for (bit, &x) in chunk.iter().enumerate() {
            word |= u64::from(x.to_ordered_u64().wrapping_sub(base) < span) << bit;
        }
        matched += u64::from(word.count_ones());
        out.push(word);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = 0u64;
        for (bit, &x) in rem.iter().enumerate() {
            word |= u64::from(x.to_ordered_u64().wrapping_sub(base) < span) << bit;
        }
        matched += u64::from(word.count_ones());
        out.push(word);
    }
    matched
}

/// Fused filter + aggregate: over every `i` where `keys[i] ∈ [lo, hi)`,
/// count the match and sum `payload[i]` (widened) in one branchless
/// multiply-masked pass — no bitmap materialization, no position list
/// (HAP Q3's hot loop). Returns `(matched, sum)` so callers need no
/// separate counting pass over the key lane.
pub fn sum_payload_range<K: ColumnValue>(keys: &[K], payload: &[u32], lo: K, hi: K) -> (u64, u64) {
    debug_assert_eq!(keys.len(), payload.len());
    if hi <= lo {
        return (0, 0);
    }
    let base = lo.to_ordered_u64();
    let span = hi.to_ordered_u64().wrapping_sub(base);
    let mut matched = 0u64;
    let mut acc = 0u64;
    for (&x, &p) in keys.iter().zip(payload) {
        let mask = u64::from(x.to_ordered_u64().wrapping_sub(base) < span);
        matched += mask;
        acc += mask * u64::from(p);
    }
    (matched, acc)
}

/// Sum `payload[i]` (widened to `u64`) for every position `i` whose bit is
/// set in the bitmap produced by [`select_range_bitmap`] over the same
/// lane. Positions beyond `payload.len()` must be clear in the mask.
pub fn sum_payload_masked(payload: &[u32], mask: &[u64]) -> u64 {
    debug_assert!(payload.len() <= mask.len() * LANE_WIDTH);
    let mut acc = 0u64;
    for (w, &word) in mask.iter().enumerate() {
        let lane_base = w * LANE_WIDTH;
        if word == u64::MAX {
            // Dense lane: straight-line sum, no bit decoding.
            for &p in &payload[lane_base..lane_base + LANE_WIDTH] {
                acc += u64::from(p);
            }
        } else {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                acc += u64::from(payload[lane_base + bit]);
                bits &= bits - 1;
            }
        }
    }
    acc
}

/// Invoke `f(position, value)` for every set bit of `mask`, where bit `i`
/// corresponds to `lane[i]` at chunk position `base + i`.
pub fn for_each_match<K: ColumnValue>(
    lane: &[K],
    mask: &[u64],
    base: usize,
    mut f: impl FnMut(usize, K),
) {
    for (w, &word) in mask.iter().enumerate() {
        let lane_base = w * LANE_WIDTH;
        let mut bits = word;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            let off = lane_base + bit;
            f(base + off, lane[off]);
            bits &= bits - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane() -> Vec<u64> {
        // 150 values (2 full lanes + partial), shuffled-ish with duplicates.
        (0..150u64).map(|i| (i * 37) % 100).collect()
    }

    #[test]
    fn count_eq_matches_filter() {
        let data = lane();
        for v in [0u64, 13, 99, 250] {
            let want = data.iter().filter(|&&x| x == v).count() as u64;
            assert_eq!(count_eq(&data, v), want, "v={v}");
        }
        assert_eq!(count_eq::<u64>(&[], 5), 0);
    }

    #[test]
    fn count_range_matches_filter() {
        let data = lane();
        for (lo, hi) in [(0u64, 100), (10, 10), (30, 20), (5, 60), (90, 1000)] {
            let want = data.iter().filter(|&&x| lo <= x && x < hi).count() as u64;
            assert_eq!(count_range(&data, lo, hi), want, "[{lo}, {hi})");
        }
    }

    #[test]
    fn min_max_matches_iterator() {
        let data = lane();
        let (lo, hi) = min_max(&data).unwrap();
        assert_eq!(lo, *data.iter().min().unwrap());
        assert_eq!(hi, *data.iter().max().unwrap());
        assert_eq!(min_max::<u64>(&[]), None);
        assert_eq!(min_max(&[7u64]), Some((7, 7)));
    }

    #[test]
    fn select_eq_positions_with_base_offset() {
        let data = lane();
        let mut out = Vec::new();
        select_eq_into(&data, 13, 1000, &mut out);
        let want: Vec<usize> = data
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == 13)
            .map(|(i, _)| 1000 + i)
            .collect();
        assert_eq!(out, want);
    }

    #[test]
    fn bitmap_width_and_count() {
        let data = lane(); // 150 values → 3 words
        let mut mask = Vec::new();
        let matched = select_range_bitmap(&data, 20, 70, &mut mask);
        assert_eq!(mask.len(), 3);
        let want = data.iter().filter(|&&x| (20..70).contains(&x)).count() as u64;
        assert_eq!(matched, want);
        assert_eq!(
            mask.iter().map(|w| w.count_ones() as u64).sum::<u64>(),
            want
        );
        // Padding bits of the final partial lane must be clear.
        assert_eq!(mask[2] >> (150 - 2 * LANE_WIDTH), 0);
    }

    #[test]
    fn masked_sum_equals_scalar_sum() {
        let keys = lane();
        let payload: Vec<u32> = (0..keys.len() as u32).map(|i| i * 3 + 1).collect();
        let mut mask = Vec::new();
        select_range_bitmap(&keys, 25, 75, &mut mask);
        let want: u64 = keys
            .iter()
            .zip(&payload)
            .filter(|(&k, _)| (25..75).contains(&k))
            .map(|(_, &p)| u64::from(p))
            .sum();
        assert_eq!(sum_payload_masked(&payload, &mask), want);
    }

    #[test]
    fn fused_sum_matches_masked_sum_and_count() {
        let keys = lane();
        let payload: Vec<u32> = (0..keys.len() as u32).map(|i| i * 7 + 2).collect();
        for (lo, hi) in [(0u64, 100), (25, 75), (99, 99), (80, 10), (0, 1)] {
            let mut mask = Vec::new();
            let expected_count = select_range_bitmap(&keys, lo, hi, &mut mask);
            let (matched, sum) = sum_payload_range(&keys, &payload, lo, hi);
            assert_eq!(sum, sum_payload_masked(&payload, &mask), "[{lo}, {hi})");
            assert_eq!(matched, expected_count, "[{lo}, {hi}) count");
        }
    }

    #[test]
    fn select_eq_spanning_subchunk_boundary() {
        // Matches on both sides of the SELECT_SUBCHUNK boundary must all be
        // collected with correct global positions.
        let mut data = vec![0u64; SELECT_SUBCHUNK * 2 + 37];
        for &i in &[
            0usize,
            SELECT_SUBCHUNK - 1,
            SELECT_SUBCHUNK,
            SELECT_SUBCHUNK * 2 + 36,
        ] {
            data[i] = 42;
        }
        let mut out = Vec::new();
        select_eq_into(&data, 42, 10, &mut out);
        assert_eq!(
            out,
            vec![
                10,
                10 + SELECT_SUBCHUNK - 1,
                10 + SELECT_SUBCHUNK,
                10 + SELECT_SUBCHUNK * 2 + 36
            ]
        );
    }

    #[test]
    fn masked_sum_dense_lane_fast_path() {
        let payload: Vec<u32> = (0..128u32).collect();
        let mask = vec![u64::MAX, u64::MAX];
        assert_eq!(
            sum_payload_masked(&payload, &mask),
            (0..128u64).sum::<u64>()
        );
    }

    #[test]
    fn for_each_match_yields_positions_and_values() {
        let data = lane();
        let mut mask = Vec::new();
        select_range_bitmap(&data, 40, 45, &mut mask);
        let mut got = Vec::new();
        for_each_match(&data, &mask, 500, |pos, val| got.push((pos, val)));
        let want: Vec<(usize, u64)> = data
            .iter()
            .enumerate()
            .filter(|(_, &x)| (40..45).contains(&x))
            .map(|(i, &x)| (500 + i, x))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn kernels_handle_exact_lane_multiples() {
        let data: Vec<u64> = (0..128).collect();
        let mut mask = Vec::new();
        let m = select_range_bitmap(&data, 0, 128, &mut mask);
        assert_eq!(m, 128);
        assert_eq!(mask, vec![u64::MAX, u64::MAX]);
        let mut out = Vec::new();
        select_eq_into(&data, 127, 0, &mut out);
        assert_eq!(out, vec![127]);
    }
}
