//! Per-partition zone maps: tight min/max bounds over *live* values.
//!
//! [`crate::PartitionMeta`] already carries the partition's *covering*
//! range (`min`/`max`), but those bounds only widen — they are routing
//! metadata for the shallow index and never re-tighten on deletes. The zone
//! map is the scan-side complement: it tracks the exact min/max of the
//! values currently live in the partition, so read paths can prune a
//! partition *before touching any of its blocks*:
//!
//! * a point query for `v` skips the scan entirely when
//!   `v ∉ [zone.min, zone.max]`;
//! * a range query skips partitions whose zone does not intersect
//!   `[lo, hi)`, and blindly consumes partitions whose zone lies fully
//!   inside — even the first/last partitions, which the covering bounds
//!   alone would force through the filtered path.
//!
//! Maintenance is incremental and piggybacks on work the write paths do
//! anyway: inserts widen, and deletes/updates only recompute (via
//! [`crate::kernels::min_max`]) when they remove a boundary value — in
//! which case they have already scanned the partition.

use crate::value::ColumnValue;

/// Tight `[min, max]` bounds over a partition's live values.
///
/// The empty zone is represented as `min > max` (specifically
/// `[K::MAX_VALUE, K::MIN_VALUE]`), which makes `contains` naturally false
/// and `include` naturally correct without a separate emptiness flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZoneMap<K: ColumnValue> {
    /// Smallest live value (meaningless when the zone is empty).
    pub min: K,
    /// Largest live value (meaningless when the zone is empty).
    pub max: K,
}

impl<K: ColumnValue> Default for ZoneMap<K> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<K: ColumnValue> ZoneMap<K> {
    /// The zone of a partition with no live values.
    #[inline]
    pub fn empty() -> Self {
        Self {
            min: K::MAX_VALUE,
            max: K::MIN_VALUE,
        }
    }

    /// Exact zone of a slice of live values.
    pub fn from_values(values: &[K]) -> Self {
        match crate::kernels::min_max(values) {
            Some((min, max)) => Self { min, max },
            None => Self::empty(),
        }
    }

    /// Whether no live value is tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min > self.max
    }

    /// Whether `v` may be present.
    #[inline]
    pub fn contains(&self, v: K) -> bool {
        self.min <= v && v <= self.max
    }

    /// Whether any live value may fall in the half-open `[lo, hi)`.
    #[inline]
    pub fn intersects(&self, lo: K, hi: K) -> bool {
        self.min < hi && lo <= self.max
    }

    /// Whether *every* live value is guaranteed to fall in `[lo, hi)` — the
    /// blind-consumption test of the range-scan path. An empty zone is
    /// vacuously inside.
    #[inline]
    pub fn inside(&self, lo: K, hi: K) -> bool {
        self.is_empty() || (lo <= self.min && self.max < hi)
    }

    /// Widen to cover `v` (insert path).
    #[inline]
    pub fn include(&mut self, v: K) {
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Whether removing one occurrence of `v` can invalidate the bounds
    /// (delete/update path): true iff `v` sits on a boundary.
    #[inline]
    pub fn on_boundary(&self, v: K) -> bool {
        v == self.min || v == self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_zone_matches_nothing() {
        let z = ZoneMap::<u64>::empty();
        assert!(z.is_empty());
        assert!(!z.contains(0));
        assert!(!z.contains(u64::MAX));
        assert!(!z.intersects(0, u64::MAX));
        assert!(z.inside(5, 6), "empty zone is vacuously inside any range");
    }

    #[test]
    fn include_builds_tight_bounds() {
        let mut z = ZoneMap::empty();
        for v in [50u64, 10, 30, 90] {
            z.include(v);
        }
        assert_eq!((z.min, z.max), (10, 90));
        assert!(z.contains(10) && z.contains(90) && z.contains(42));
        assert!(!z.contains(9) && !z.contains(91));
    }

    #[test]
    fn from_values_matches_iterator_bounds() {
        let vals = [7u64, 3, 9, 3, 8];
        let z = ZoneMap::from_values(&vals);
        assert_eq!((z.min, z.max), (3, 9));
        assert!(ZoneMap::<u64>::from_values(&[]).is_empty());
    }

    #[test]
    fn intersects_is_half_open() {
        let z = ZoneMap {
            min: 10u64,
            max: 20,
        };
        assert!(z.intersects(0, 11));
        assert!(z.intersects(20, 25));
        assert!(!z.intersects(0, 10), "hi is exclusive");
        assert!(!z.intersects(21, 100));
    }

    #[test]
    fn inside_requires_full_containment() {
        let z = ZoneMap {
            min: 10u64,
            max: 20,
        };
        assert!(z.inside(10, 21));
        assert!(
            !z.inside(10, 20),
            "max == hi is outside the half-open range"
        );
        assert!(!z.inside(11, 30));
    }

    #[test]
    fn boundary_detection() {
        let z = ZoneMap {
            min: 10u64,
            max: 20,
        };
        assert!(z.on_boundary(10));
        assert!(z.on_boundary(20));
        assert!(!z.on_boundary(15));
    }

    #[test]
    fn signed_zones_work() {
        let z = ZoneMap::from_values(&[-5i64, 3, -9]);
        assert_eq!((z.min, z.max), (-9, 3));
        assert!(z.contains(-9));
        assert!(!z.contains(4));
    }
}
