//! # casper-storage
//!
//! Storage substrate for the Casper column-layout engine, reproducing the
//! storage-engine layer of *"Optimal Column Layout for Hybrid Workloads"*
//! (Athanassoulis, Bøgh, Idreos — VLDB 2019).
//!
//! The central type is [`PartitionedChunk`]: a fixed-width column chunk that
//! is range partitioned into variable-sized partitions, each optionally
//! carrying *ghost values* (empty slots used as a per-partition update
//! buffer, §2 of the paper). The chunk supports the paper's five access
//! patterns (§3):
//!
//! * **point queries** — partition-index probe + tight-loop partition scan,
//! * **range queries** — filtered first/last partition, blind middle scans,
//! * **inserts** — the ripple-insert algorithm (Fig. 4a),
//! * **deletes** — swap-fill plus hole ripple (Fig. 4b) or ghost creation,
//! * **updates** — direct source→target ripple, forward or backward.
//!
//! Every operation returns an [`OpCost`] describing the block-level accesses
//! it performed, which is what the cost model of `casper-core` predicts.
//!
//! Also provided: the two classic baselines used in the paper's evaluation —
//! a fully [`sorted`] column and a sorted column with a [`delta`] store —
//! plus the [`compress`] codecs of §6.2 (dictionary, frame-of-reference,
//! RLE) and the shallow k-ary [`index`] of §6.3.

pub mod chunk;
pub mod compress;
pub mod delta;
pub mod error;
pub mod ghost;
pub mod index;
pub mod kernels;
pub mod layout;
pub mod ops;
pub mod partition;
pub mod payload;
pub mod simd;
pub mod sorted;
pub mod value;

pub use chunk::{ChunkConfig, ChunkState, PartitionedChunk};
pub use compress::StorageMode;
pub use delta::SortedDelta;
pub use error::StorageError;
pub use kernels::{Fragment, ZoneMap};
pub use layout::{BlockLayout, PartitionSpec};
pub use ops::{OpCost, PointQueryResult, RangeConsumer, WriteResult};
pub use partition::PartitionMeta;
pub use payload::PayloadSet;
pub use sorted::SortedColumn;
pub use value::ColumnValue;

/// Policy deciding how a chunk maintains density under deletes and how
/// inserts acquire free slots (Table 1 of the paper: update policy ×
/// buffering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdatePolicy {
    /// The column stays dense: deletes ripple their hole to the end of the
    /// column, inserts ripple a slot in from the column tail. No ghost
    /// values are ever left inside partitions. (Paper: in-place updates,
    /// no buffering.)
    Dense,
    /// Deletes leave ghost slots at the end of their partition; inserts
    /// consume the nearest available ghost slot, rippling it over as few
    /// partitions as possible. (Paper: hybrid updates, per-partition
    /// buffering.)
    #[default]
    Ghost,
}
