//! Shallow partition index (§3, §6.3).
//!
//! The paper keeps a "fixed-cost light-weight partition index ... in the
//! form of a shallow k-ary tree" over the per-partition metadata, falling
//! back to a Zonemap-style linear scan when the number of partitions is
//! small enough to live in cache.
//!
//! [`PartitionIndex`] implements both: a flattened k-ary search tree
//! ([`KAryTree`]) probed level by level, and a linear scan used below a
//! configurable threshold. The index answers *rank* queries over the
//! partitions' upper bounds: `locate(v)` returns the first partition whose
//! upper bound is `>= v`, which is the partition a point query must scan
//! and the partition an insert targets.

use crate::value::ColumnValue;

/// Default fan-out of the k-ary tree (the paper's "shallow k-ary tree").
pub const DEFAULT_FANOUT: usize = 16;

/// Below this many partitions a plain linear scan of the upper bounds is
/// used (the metadata "can be treated as Zonemaps", §6.3).
pub const LINEAR_THRESHOLD: usize = 16;

/// A flattened static k-ary search tree over a sorted slice of keys.
///
/// Probing visits one node per level; with fan-out `F` and `k` keys the
/// depth is `ceil(log_F(k))`, matching the "shallow" index of the paper.
#[derive(Debug, Clone)]
pub struct KAryTree<K: ColumnValue> {
    /// Separator keys per level, from root (coarsest) to leaves; the last
    /// level is the full sorted key array.
    levels: Vec<Vec<K>>,
    fanout: usize,
}

impl<K: ColumnValue> KAryTree<K> {
    /// Build a tree with the given fan-out over `keys` (must be sorted
    /// ascending; duplicates allowed).
    pub fn build(keys: &[K], fanout: usize) -> Self {
        assert!(fanout >= 2, "fan-out must be at least 2");
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        let mut levels = vec![keys.to_vec()];
        while levels.last().map_or(0, Vec::len) > fanout {
            let below = levels.last().expect("non-empty");
            // Every `fanout`-th key becomes a separator one level up.
            let up: Vec<K> = below.iter().step_by(fanout).copied().collect();
            levels.push(up);
        }
        levels.reverse();
        Self { levels, fanout }
    }

    /// First index `i` such that `keys[i] >= v`, or `keys.len()` when `v`
    /// exceeds every key — the classic `lower_bound` rank.
    pub fn lower_bound(&self, v: K) -> usize {
        let mut lo = 0usize; // index within the current level
        for (depth, level) in self.levels.iter().enumerate() {
            let hi = (lo + self.fanout).min(level.len());
            let mut pos = hi; // first key >= v within [lo, hi)
            for (i, &k) in level[lo..hi].iter().enumerate() {
                if k >= v {
                    pos = lo + i;
                    break;
                }
            }
            if depth + 1 == self.levels.len() {
                return pos;
            }
            // Descend: child group of separator `pos` starts at pos*fanout,
            // but v may be <= the separator *before* the matching one, so
            // descend into the group of the last separator < v.
            lo = pos.saturating_sub(1).min(level.len().saturating_sub(1)) * self.fanout;
            if level.is_empty() {
                lo = 0;
            }
            // If every separator at this level is >= v, the target can only
            // be in the very first group.
            if pos == 0 {
                lo = 0;
            }
        }
        0
    }

    /// Number of levels probed per lookup.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }
}

/// Partition locator: k-ary tree above [`LINEAR_THRESHOLD`] partitions,
/// Zonemap-style linear scan below it.
///
/// Bound updates rebuild the tree eagerly (`O(k)`, and they are rare: only
/// inserts above the current chunk maximum widen a bound), which keeps
/// [`PartitionIndex::locate`] a `&self` operation so concurrent readers can
/// share the index.
#[derive(Debug, Clone)]
pub struct PartitionIndex<K: ColumnValue> {
    /// Upper bounds (inclusive) of each partition, ascending.
    bounds: Vec<K>,
    tree: Option<KAryTree<K>>,
    fanout: usize,
}

impl<K: ColumnValue> PartitionIndex<K> {
    /// Build an index over the partitions' inclusive upper bounds.
    pub fn new(bounds: Vec<K>) -> Self {
        Self::with_fanout(bounds, DEFAULT_FANOUT)
    }

    /// As [`PartitionIndex::new`] with an explicit tree fan-out.
    pub fn with_fanout(bounds: Vec<K>, fanout: usize) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        let mut idx = Self {
            bounds,
            tree: None,
            fanout,
        };
        idx.rebuild();
        idx
    }

    fn rebuild(&mut self) {
        self.tree = if self.bounds.len() > LINEAR_THRESHOLD {
            Some(KAryTree::build(&self.bounds, self.fanout))
        } else {
            None
        };
    }

    /// Heap bytes resident for the bounds array and the k-ary tree levels.
    pub fn resident_bytes(&self) -> usize {
        let tree: usize = self
            .tree
            .as_ref()
            .map(|t| {
                t.levels
                    .iter()
                    .map(|l| l.capacity() * std::mem::size_of::<K>())
                    .sum()
            })
            .unwrap_or(0);
        self.bounds.capacity() * std::mem::size_of::<K>() + tree
    }

    /// Partition that a value `v` maps to: the first partition whose upper
    /// bound is `>= v`, clamped to the last partition (values above every
    /// bound route to the final partition, which then widens its bound).
    pub fn locate(&self, v: K) -> usize {
        let k = self.bounds.len();
        if k == 0 {
            return 0;
        }
        let rank = match &self.tree {
            Some(t) => t.lower_bound(v),
            None => self.bounds.iter().position(|&b| b >= v).unwrap_or(k),
        };
        rank.min(k - 1)
    }

    /// Update the upper bound of partition `p` (e.g. after an insert above
    /// the previous maximum), rebuilding the shallow tree.
    pub fn update_bound(&mut self, p: usize, bound: K) {
        self.bounds[p] = bound;
        self.rebuild();
    }

    /// Number of partitions indexed.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The indexed upper bounds.
    pub fn bounds(&self) -> &[K] {
        &self.bounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ref_lower_bound(keys: &[u64], v: u64) -> usize {
        keys.partition_point(|&k| k < v)
    }

    #[test]
    fn kary_matches_binary_search_small() {
        let keys: Vec<u64> = (0..10).map(|i| i * 10).collect();
        let t = KAryTree::build(&keys, 4);
        for v in 0..120 {
            assert_eq!(
                t.lower_bound(v),
                ref_lower_bound(&keys, v),
                "mismatch at v={v}"
            );
        }
    }

    #[test]
    fn kary_matches_binary_search_large_multiple_levels() {
        let keys: Vec<u64> = (0..1000).map(|i| i * 3 + 7).collect();
        let t = KAryTree::build(&keys, 8);
        assert!(t.depth() >= 3, "expected a multi-level tree");
        for v in (0..3100).step_by(13) {
            assert_eq!(
                t.lower_bound(v),
                ref_lower_bound(&keys, v),
                "mismatch at v={v}"
            );
        }
    }

    #[test]
    fn kary_handles_duplicates() {
        let keys: Vec<u64> = vec![5, 5, 5, 10, 10, 20, 20, 20, 20, 30];
        let t = KAryTree::build(&keys, 3);
        for v in [0, 5, 6, 10, 11, 20, 21, 30, 31] {
            assert_eq!(t.lower_bound(v), ref_lower_bound(&keys, v), "v={v}");
        }
    }

    #[test]
    fn kary_single_key() {
        let t = KAryTree::build(&[42u64], 16);
        assert_eq!(t.lower_bound(1), 0);
        assert_eq!(t.lower_bound(42), 0);
        assert_eq!(t.lower_bound(43), 1);
    }

    #[test]
    fn index_locates_covering_partition() {
        // Partitions with upper bounds 10, 20, 30.
        let idx = PartitionIndex::new(vec![10u64, 20, 30]);
        assert_eq!(idx.locate(0), 0);
        assert_eq!(idx.locate(10), 0);
        assert_eq!(idx.locate(11), 1);
        assert_eq!(idx.locate(20), 1);
        assert_eq!(idx.locate(30), 2);
        // Above every bound → last partition.
        assert_eq!(idx.locate(99), 2);
    }

    #[test]
    fn index_switches_to_tree_and_stays_correct() {
        let bounds: Vec<u64> = (1..=200).map(|i| i * 5).collect();
        let idx = PartitionIndex::new(bounds.clone());
        for v in (0..1100).step_by(7) {
            let expected = ref_lower_bound(&bounds, v).min(bounds.len() - 1);
            assert_eq!(idx.locate(v), expected, "v={v}");
        }
    }

    #[test]
    fn index_bound_update_is_visible_after_lazy_rebuild() {
        let mut idx = PartitionIndex::new((1..=100u64).map(|i| i * 10).collect());
        assert_eq!(idx.locate(1005), 99);
        idx.update_bound(99, 2000);
        assert_eq!(idx.locate(1500), 99);
        assert_eq!(idx.bounds()[99], 2000);
    }

    #[test]
    fn proptest_kary_lower_bound() {
        use proptest::prelude::*;
        proptest!(|(mut keys in proptest::collection::vec(0u64..10_000, 1..300),
                    probes in proptest::collection::vec(0u64..10_500, 1..50),
                    fanout in 2usize..20)| {
            keys.sort_unstable();
            let t = KAryTree::build(&keys, fanout);
            for v in probes {
                prop_assert_eq!(t.lower_bound(v), ref_lower_bound(&keys, v));
            }
        });
    }
}
