//! Block layout and partitioning-scheme representation (§4.1 of the paper).
//!
//! A column chunk of `M` values is organized into `N = ceil(M / B)` logical
//! blocks of `B` values each. A *partitioning scheme* is represented by `N`
//! Boolean variables `p_i`; `p_i = 1` means a partition ends at the end of
//! block `i` (Fig. 6). The last block always carries a boundary
//! (`p_{N-1} = 1`), guaranteeing at least one partition.

use crate::value::ColumnValue;

/// Physical block geometry: how many values form one logical block.
///
/// The paper tunes the block size in bytes (a multiple of the cache-line
/// size; 16 KB in most experiments) and derives the per-value granularity
/// from the column's fixed width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockLayout {
    /// Block size in bytes.
    pub block_bytes: usize,
    /// Width of one column value in bytes.
    pub value_width: usize,
}

impl BlockLayout {
    /// Layout for blocks of `block_bytes` holding values of type `K`.
    ///
    /// # Panics
    /// Panics if the block is smaller than a single value.
    pub fn new<K: ColumnValue>(block_bytes: usize) -> Self {
        assert!(
            block_bytes >= K::WIDTH,
            "block of {block_bytes} bytes cannot hold a single {} byte value",
            K::WIDTH
        );
        Self {
            block_bytes,
            value_width: K::WIDTH,
        }
    }

    /// The paper's default geometry: 16 KB blocks.
    pub fn default_for<K: ColumnValue>() -> Self {
        Self::new::<K>(16 * 1024)
    }

    /// Number of values per logical block.
    #[inline]
    pub fn values_per_block(&self) -> usize {
        (self.block_bytes / self.value_width).max(1)
    }

    /// Number of logical blocks needed for `num_values` values
    /// (`N = ceil(M / B)`).
    #[inline]
    pub fn num_blocks(&self, num_values: usize) -> usize {
        num_values.div_ceil(self.values_per_block())
    }

    /// The block id that holds the value at (sorted) position `pos`.
    #[inline]
    pub fn block_of_position(&self, pos: usize) -> usize {
        pos / self.values_per_block()
    }
}

/// A partitioning scheme over `N` logical blocks: the boundary bit-vector of
/// §4.1 (`boundaries[i] == true` iff `p_i = 1`).
///
/// Invariants (checked by [`PartitionSpec::validate`]):
/// * non-empty,
/// * the last block is always a boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSpec {
    boundaries: Vec<bool>,
}

impl PartitionSpec {
    /// Build a spec from an explicit boundary vector, forcing the trailing
    /// boundary (`p_{N-1} = 1`, the constraint of Eq. 19).
    pub fn from_boundaries(mut boundaries: Vec<bool>) -> Self {
        assert!(!boundaries.is_empty(), "a spec needs at least one block");
        *boundaries.last_mut().expect("non-empty") = true;
        Self { boundaries }
    }

    /// A single partition spanning all `n_blocks` blocks (the "no structure"
    /// layout of a vanilla column store).
    pub fn single(n_blocks: usize) -> Self {
        assert!(n_blocks > 0);
        let mut boundaries = vec![false; n_blocks];
        boundaries[n_blocks - 1] = true;
        Self { boundaries }
    }

    /// Equi-width partitioning: `k` partitions of (nearly) equal block
    /// count, the `Equi` baseline of §7. When `k > n_blocks` every block
    /// becomes its own partition.
    pub fn equi_width(n_blocks: usize, k: usize) -> Self {
        assert!(n_blocks > 0 && k > 0);
        let k = k.min(n_blocks);
        let mut boundaries = vec![false; n_blocks];
        // Distribute blocks as evenly as possible: the first `rem`
        // partitions get one extra block.
        let base = n_blocks / k;
        let rem = n_blocks % k;
        let mut end = 0usize;
        for p in 0..k {
            end += base + usize::from(p < rem);
            boundaries[end - 1] = true;
        }
        Self { boundaries }
    }

    /// Build a spec from partition sizes expressed in blocks.
    ///
    /// # Panics
    /// Panics if any size is zero or the sizes do not sum to a positive
    /// total.
    pub fn from_block_sizes(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "need at least one partition");
        let total: usize = sizes.iter().sum();
        assert!(total > 0, "total block count must be positive");
        let mut boundaries = vec![false; total];
        let mut end = 0usize;
        for &s in sizes {
            assert!(s > 0, "partition sizes must be positive");
            end += s;
            boundaries[end - 1] = true;
        }
        Self { boundaries }
    }

    /// Build a spec from exclusive partition end offsets (in blocks). The
    /// last end must equal the total block count.
    pub fn from_block_ends(ends: &[usize], n_blocks: usize) -> Self {
        assert_eq!(
            ends.last().copied(),
            Some(n_blocks),
            "last end must equal the block count"
        );
        let mut boundaries = vec![false; n_blocks];
        for &e in ends {
            assert!(e > 0 && e <= n_blocks);
            boundaries[e - 1] = true;
        }
        Self { boundaries }
    }

    /// Number of logical blocks covered by this spec.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.boundaries.len()
    }

    /// Number of partitions (`k` in the paper's notation).
    pub fn partition_count(&self) -> usize {
        self.boundaries.iter().filter(|&&b| b).count()
    }

    /// The raw boundary vector (`p_i` variables).
    #[inline]
    pub fn boundaries(&self) -> &[bool] {
        &self.boundaries
    }

    /// Iterate over partitions as half-open block ranges `[start, end)`.
    pub fn block_ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        let mut start = 0usize;
        self.boundaries
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(i, _)| {
                let r = start..i + 1;
                start = i + 1;
                r
            })
    }

    /// Translate the block-granularity spec into value-granularity partition
    /// sizes for a chunk of `num_values` values: every partition gets
    /// `blocks * values_per_block` values except the last, which absorbs the
    /// remainder.
    pub fn value_sizes(&self, num_values: usize, layout: &BlockLayout) -> Vec<usize> {
        let vpb = layout.values_per_block();
        debug_assert_eq!(layout.num_blocks(num_values.max(1)), self.n_blocks());
        let mut sizes: Vec<usize> = Vec::with_capacity(self.partition_count());
        let mut consumed = 0usize;
        for r in self.block_ranges() {
            let want = r.len() * vpb;
            let take = want.min(num_values - consumed);
            consumed += take;
            sizes.push(take);
        }
        debug_assert_eq!(consumed, num_values);
        sizes
    }

    /// Largest partition size in blocks (used to check read-SLA feasibility,
    /// Eq. 21).
    pub fn max_partition_blocks(&self) -> usize {
        self.block_ranges().map(|r| r.len()).max().unwrap_or(0)
    }

    /// Check structural invariants, returning a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.boundaries.is_empty() {
            return Err("empty boundary vector".into());
        }
        if !self.boundaries.last().copied().unwrap_or(false) {
            return Err("last block must be a partition boundary".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_geometry() {
        let l = BlockLayout::new::<u64>(16 * 1024);
        assert_eq!(l.values_per_block(), 2048);
        assert_eq!(l.num_blocks(2048), 1);
        assert_eq!(l.num_blocks(2049), 2);
        assert_eq!(l.num_blocks(1), 1);
        assert_eq!(l.block_of_position(0), 0);
        assert_eq!(l.block_of_position(2047), 0);
        assert_eq!(l.block_of_position(2048), 1);
    }

    #[test]
    fn block_layout_u32_paper_default() {
        // Paper: 16KB blocks with 4-byte values → 4096 values per block.
        let l = BlockLayout::default_for::<u32>();
        assert_eq!(l.values_per_block(), 4096);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn block_layout_rejects_tiny_blocks() {
        let _ = BlockLayout::new::<u64>(4);
    }

    #[test]
    fn single_partition_spec() {
        let s = PartitionSpec::single(8);
        assert_eq!(s.partition_count(), 1);
        assert_eq!(s.block_ranges().collect::<Vec<_>>(), vec![0..8]);
    }

    #[test]
    fn equi_width_even_split() {
        let s = PartitionSpec::equi_width(8, 4);
        assert_eq!(s.partition_count(), 4);
        let ranges: Vec<_> = s.block_ranges().collect();
        assert_eq!(ranges, vec![0..2, 2..4, 4..6, 6..8]);
    }

    #[test]
    fn equi_width_uneven_split_spreads_remainder() {
        let s = PartitionSpec::equi_width(10, 4);
        let sizes: Vec<_> = s.block_ranges().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(sizes.iter().sum::<usize>(), 10);
    }

    #[test]
    fn equi_width_caps_at_block_count() {
        let s = PartitionSpec::equi_width(3, 100);
        assert_eq!(s.partition_count(), 3);
    }

    #[test]
    fn from_boundaries_forces_trailing_boundary() {
        let s = PartitionSpec::from_boundaries(vec![false, true, false, false]);
        assert!(s.boundaries()[3]);
        assert_eq!(s.partition_count(), 2);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn fig6_examples() {
        // Fig. 6b: boundaries after blocks 2, 4, 5, 7 (0-indexed) —
        // partitions of 3, 2, 1, 2 blocks.
        let s = PartitionSpec::from_boundaries(vec![
            false, false, true, false, true, true, false, true,
        ]);
        let sizes: Vec<_> = s.block_ranges().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 2, 1, 2]);

        // Fig. 6c: four partitions, each two blocks wide.
        let s = PartitionSpec::from_boundaries(vec![
            false, true, false, true, false, true, false, true,
        ]);
        let sizes: Vec<_> = s.block_ranges().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![2, 2, 2, 2]);
    }

    #[test]
    fn from_block_sizes_round_trips() {
        let s = PartitionSpec::from_block_sizes(&[3, 1, 4]);
        assert_eq!(s.n_blocks(), 8);
        let sizes: Vec<_> = s.block_ranges().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 1, 4]);
    }

    #[test]
    fn from_block_ends_matches_sizes() {
        let a = PartitionSpec::from_block_ends(&[2, 5, 8], 8);
        let b = PartitionSpec::from_block_sizes(&[2, 3, 3]);
        assert_eq!(a, b);
    }

    #[test]
    fn value_sizes_last_partition_absorbs_remainder() {
        let layout = BlockLayout {
            block_bytes: 16,
            value_width: 8,
        }; // 2 values per block
        let s = PartitionSpec::from_block_sizes(&[2, 2]);
        // 7 values over 4 blocks of 2: partition sizes 4 and 3.
        assert_eq!(s.value_sizes(7, &layout), vec![4, 3]);
        assert_eq!(s.value_sizes(8, &layout), vec![4, 4]);
    }

    #[test]
    fn max_partition_blocks_reports_widest() {
        let s = PartitionSpec::from_block_sizes(&[1, 5, 2]);
        assert_eq!(s.max_partition_blocks(), 5);
    }
}
