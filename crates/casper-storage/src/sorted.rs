//! Fully sorted column — the `Sorted` baseline of §7.
//!
//! State-of-the-art analytical engines "store columns either sorted based
//! on a sort key ... or following insertion order" (§2). [`SortedColumn`]
//! is the former without any write optimization: reads are fast (binary
//! search + contiguous scan) but every insert/delete must memmove the tail
//! of the column, which is what makes this layout collapse under hybrid
//! workloads (Fig. 12).

use crate::ops::OpCost;
use crate::payload::PayloadSet;
use crate::value::ColumnValue;

/// A dense, fully sorted column with slot-aligned payload columns.
#[derive(Debug, Clone)]
pub struct SortedColumn<K: ColumnValue> {
    data: Vec<K>,
    payload_cols: Vec<Vec<u32>>,
    /// Values per block, for cost accounting.
    values_per_block: usize,
}

impl<K: ColumnValue> SortedColumn<K> {
    /// Build from raw values (sorted internally) and optional payload
    /// columns, co-sorted by key.
    pub fn build(
        mut values: Vec<K>,
        mut payload_cols: Vec<Vec<u32>>,
        values_per_block: usize,
    ) -> Self {
        assert!(values_per_block > 0);
        for c in &payload_cols {
            assert_eq!(c.len(), values.len(), "payload column length mismatch");
        }
        if payload_cols.is_empty() {
            values.sort_unstable();
        } else {
            let mut perm: Vec<u32> = (0..values.len() as u32).collect();
            perm.sort_by_key(|&i| values[i as usize]);
            values = perm.iter().map(|&i| values[i as usize]).collect();
            for col in &mut payload_cols {
                *col = perm.iter().map(|&i| col[i as usize]).collect();
            }
        }
        Self {
            data: values,
            payload_cols,
            values_per_block,
        }
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Sorted values.
    #[inline]
    pub fn values(&self) -> &[K] {
        &self.data
    }

    /// Heap bytes resident for the key column plus payload columns
    /// (allocated capacity).
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<K>()
            + self
                .payload_cols
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// Read one payload attribute.
    pub fn payload(&self, col: usize, pos: usize) -> u32 {
        self.payload_cols[col][pos]
    }

    /// Gather selected payload columns of one row (HAP Q1 projectivity).
    pub fn gather_row(&self, pos: usize, cols: &[usize]) -> Vec<u32> {
        cols.iter().map(|&c| self.payload_cols[c][pos]).collect()
    }

    /// Physically scan the block(s) spanning positions `[from, to)` with a
    /// tight loop — the engine reads at block granularity ("no further
    /// navigation structure within a block", §4.4), so even a sorted column
    /// consumes whole blocks after the zonemap probe.
    fn scan_blocks(&self, from: usize, to: usize, cost: &mut OpCost) {
        if self.data.is_empty() {
            cost.random_reads += 1;
            return;
        }
        let vpb = self.values_per_block;
        let from = from.min(self.data.len().saturating_sub(1));
        let to = to.clamp(from + 1, self.data.len());
        let b0 = from / vpb;
        let b1 = (to - 1) / vpb;
        let start = b0 * vpb;
        let end = ((b1 + 1) * vpb).min(self.data.len());
        let mut acc = 0u64;
        for &x in &self.data[start..end] {
            acc = acc.wrapping_add(x.to_ordered_u64());
        }
        std::hint::black_box(acc);
        cost.random_reads += 1;
        cost.seq_reads += (b1 - b0) as u64;
        cost.values_scanned += (end - start) as u64;
    }

    /// Point query: zonemap-style probe to the covering block, then a
    /// tight-loop scan of that block. Returns the contiguous index range of
    /// matches.
    pub fn point_query(&self, v: K) -> (std::ops::Range<usize>, OpCost) {
        let lo = self.data.partition_point(|&x| x < v);
        let hi = self.data.partition_point(|&x| x <= v);
        let mut cost = OpCost::default();
        cost.index_probes += 1;
        self.scan_blocks(lo, hi.max(lo + 1), &mut cost);
        (lo..hi, cost)
    }

    /// Range query over `[lo, hi)`; returns the qualifying index range.
    /// The first and last blocks of the range are physically filtered,
    /// mirroring the partitioned path.
    pub fn range_query(&self, lo: K, hi: K) -> (std::ops::Range<usize>, OpCost) {
        let a = self.data.partition_point(|&x| x < lo);
        let b = self.data.partition_point(|&x| x < hi);
        let mut cost = OpCost::default();
        cost.index_probes += 1;
        // Filter the boundary blocks.
        self.scan_blocks(a, a + 1, &mut cost);
        if b > a {
            self.scan_blocks(b - 1, b, &mut cost);
            cost.seq_reads += (b - a).div_ceil(self.values_per_block) as u64;
        }
        cost.values_scanned += (b - a) as u64;
        (a..b, cost)
    }

    /// Count rows in `[lo, hi)`.
    pub fn range_count(&self, lo: K, hi: K) -> (u64, OpCost) {
        let (r, c) = self.range_query(lo, hi);
        (r.len() as u64, c)
    }

    /// Sum payload columns over `[lo, hi)`.
    pub fn range_sum_payload(&self, lo: K, hi: K, cols: &[usize]) -> (u64, OpCost) {
        let (r, mut cost) = self.range_query(lo, hi);
        let mut sum = 0u64;
        for &c in cols {
            sum += self.payload_cols[c][r.clone()]
                .iter()
                .map(|&v| u64::from(v))
                .sum::<u64>();
        }
        cost.seq_reads += (cols.len() * r.len().div_ceil(self.values_per_block)) as u64;
        (sum, cost)
    }

    /// Insert preserving sort order: a `memmove` of everything after the
    /// insertion point — the cost that delta stores exist to avoid.
    pub fn insert(&mut self, v: K, payload: &[u32]) -> OpCost {
        assert_eq!(payload.len(), self.payload_cols.len(), "payload arity");
        let pos = self.data.partition_point(|&x| x < v);
        let moved = self.data.len() - pos;
        self.data.insert(pos, v);
        for (c, &pv) in self.payload_cols.iter_mut().zip(payload) {
            c.insert(pos, pv);
        }
        OpCost {
            random_writes: 1,
            seq_writes: moved.div_ceil(self.values_per_block) as u64,
            ..OpCost::default()
        }
    }

    /// Delete all values equal to `v`, compacting the column.
    pub fn delete(&mut self, v: K) -> (u64, OpCost) {
        let (r, mut cost) = self.point_query(v);
        let removed = r.len();
        if removed > 0 {
            let moved = self.data.len() - r.end;
            self.data.drain(r.clone());
            for c in &mut self.payload_cols {
                c.drain(r.clone());
            }
            cost.random_writes += 1;
            cost.seq_writes += moved.div_ceil(self.values_per_block) as u64;
        }
        (removed as u64, cost)
    }

    /// Update the first value equal to `old` to `new` (delete + insert,
    /// carrying the payload along).
    pub fn update(&mut self, old: K, new: K) -> (u64, OpCost) {
        let (r, mut cost) = self.point_query(old);
        if r.is_empty() {
            return (0, cost);
        }
        let pos = r.start;
        let row: Vec<u32> = self.payload_cols.iter().map(|c| c[pos]).collect();
        self.data.remove(pos);
        for c in &mut self.payload_cols {
            c.remove(pos);
        }
        cost.absorb(self.insert(new, &row));
        (1, cost)
    }

    /// Remove the first value equal to `v` and return its full payload row
    /// — the single-row counterpart of [`SortedColumn::delete`] (which
    /// drains every match), used when a row migrates to another chunk.
    pub fn take_one(&mut self, v: K) -> (Option<Vec<u32>>, OpCost) {
        let (r, mut cost) = self.point_query(v);
        if r.is_empty() {
            return (None, cost);
        }
        let pos = r.start;
        let row: Vec<u32> = self.payload_cols.iter().map(|c| c[pos]).collect();
        let moved = self.data.len() - pos;
        self.data.remove(pos);
        for c in &mut self.payload_cols {
            c.remove(pos);
        }
        cost.random_writes += 1;
        cost.seq_writes += moved.div_ceil(self.values_per_block) as u64;
        (Some(row), cost)
    }

    /// Bulk-merge sorted `(key, payload-row)` pairs and remove keys in
    /// `deletes` — the delta-merge primitive used by [`crate::SortedDelta`].
    pub fn merge(&mut self, mut inserts: Vec<(K, Vec<u32>)>, deletes: &[K]) -> OpCost {
        let mut cost = OpCost::default();
        // One sequential pass over the whole column (re-sort merge).
        cost.seq_reads = self.len().div_ceil(self.values_per_block) as u64;
        cost.seq_writes = cost.seq_reads;
        inserts.sort_by_key(|(k, _)| *k);
        let mut delete_multiset: std::collections::BTreeMap<K, usize> =
            std::collections::BTreeMap::new();
        for &d in deletes {
            *delete_multiset.entry(d).or_default() += 1;
        }
        let old_data = std::mem::take(&mut self.data);
        let old_payload = std::mem::take(&mut self.payload_cols);
        let width = old_payload.len();
        let mut new_data = Vec::with_capacity(old_data.len() + inserts.len());
        let mut new_payload: Vec<Vec<u32>> = (0..width)
            .map(|_| Vec::with_capacity(old_data.len() + inserts.len()))
            .collect();
        let mut ins = inserts.into_iter().peekable();
        for (i, k) in old_data.iter().copied().enumerate() {
            while ins.peek().is_some_and(|(ik, _)| *ik <= k) {
                let (ik, row) = ins.next().expect("peeked");
                new_data.push(ik);
                for (c, v) in new_payload.iter_mut().zip(&row) {
                    c.push(*v);
                }
            }
            if let Some(cnt) = delete_multiset.get_mut(&k) {
                if *cnt > 0 {
                    *cnt -= 1;
                    continue;
                }
            }
            new_data.push(k);
            for (c, col) in new_payload.iter_mut().zip(&old_payload) {
                c.push(col[i]);
            }
        }
        for (ik, row) in ins {
            new_data.push(ik);
            for (c, v) in new_payload.iter_mut().zip(&row) {
                c.push(*v);
            }
        }
        self.data = new_data;
        self.payload_cols = new_payload;
        cost
    }

    /// Expose the payload columns as a freshly assembled [`PayloadSet`]
    /// (used when re-loading a sorted column into a partitioned chunk).
    pub fn to_payload_set(&self) -> PayloadSet {
        PayloadSet::from_columns(self.payload_cols.clone(), self.data.len())
    }

    /// Clone out keys and payload columns.
    pub fn to_parts(&self) -> (Vec<K>, Vec<Vec<u32>>) {
        (self.data.clone(), self.payload_cols.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col() -> SortedColumn<u64> {
        SortedColumn::build(vec![5, 1, 9, 3, 7], Vec::new(), 2)
    }

    #[test]
    fn build_sorts() {
        let c = col();
        assert_eq!(c.values(), &[1, 3, 5, 7, 9]);
    }

    #[test]
    fn point_query_finds_range_of_duplicates() {
        let c = SortedColumn::build(vec![2u64, 2, 2, 1, 3], Vec::new(), 2);
        let (r, _) = c.point_query(2);
        assert_eq!(r, 1..4);
        let (r, _) = c.point_query(4);
        assert!(r.is_empty());
    }

    #[test]
    fn range_query_half_open() {
        let c = col();
        let (r, _) = c.range_query(3, 9);
        assert_eq!(&c.values()[r], &[3, 5, 7]);
        assert_eq!(c.range_count(0, 100).0, 5);
    }

    #[test]
    fn insert_keeps_order_and_charges_memmove() {
        let mut c = col();
        let cost = c.insert(4, &[]);
        assert_eq!(c.values(), &[1, 3, 4, 5, 7, 9]);
        // Three values (5,7,9) moved → 2 blocks of 2.
        assert_eq!(cost.seq_writes, 2);
    }

    #[test]
    fn delete_compacts() {
        let mut c = SortedColumn::build(vec![1u64, 2, 2, 3], Vec::new(), 2);
        let (n, _) = c.delete(2);
        assert_eq!(n, 2);
        assert_eq!(c.values(), &[1, 3]);
    }

    #[test]
    fn update_moves_value_with_payload() {
        let mut c = SortedColumn::build(vec![1u64, 2, 3], vec![vec![10, 20, 30]], 2);
        let (n, _) = c.update(2, 9);
        assert_eq!(n, 1);
        assert_eq!(c.values(), &[1, 3, 9]);
        assert_eq!(c.payload(0, 2), 20); // payload followed the key
    }

    #[test]
    fn merge_applies_inserts_and_deletes_in_order() {
        let mut c = SortedColumn::build(vec![1u64, 3, 5, 7], vec![vec![1, 3, 5, 7]], 2);
        c.merge(vec![(4, vec![4]), (0, vec![0]), (9, vec![9])], &[3, 7]);
        assert_eq!(c.values(), &[0, 1, 4, 5, 9]);
        let pays: Vec<u32> = (0..5).map(|i| c.payload(0, i)).collect();
        assert_eq!(pays, vec![0, 1, 4, 5, 9]);
    }

    #[test]
    fn merge_deletes_respect_multiplicity() {
        let mut c = SortedColumn::build(vec![2u64, 2, 2], Vec::new(), 2);
        c.merge(Vec::new(), &[2]);
        assert_eq!(c.values(), &[2, 2]);
        c.merge(Vec::new(), &[2, 2, 2]);
        assert!(c.is_empty());
    }
}
