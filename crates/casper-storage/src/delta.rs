//! Sorted column + delta store — the `State-of-art` baseline of §7.
//!
//! "Modern analytical data systems rely on columnar layouts and employ
//! delta stores to inject new data and updates" (§1). [`SortedDelta`] keeps
//! the main column fully sorted and absorbs writes into a *sorted* delta
//! buffer — real delta stores (SAP HANA's delta, positional delta trees,
//! Vertica's WOS) keep their buffer ordered/indexed so reads stay cheap,
//! which means every buffered write pays an ordered-insertion shift and
//! reads pay an extra probe. When the buffer exceeds its capacity it is
//! merged into the main column in one sequential pass — the periodic
//! reorganization cost that Casper's per-partition ghost values avoid.

use crate::ops::OpCost;
use crate::sorted::SortedColumn;
use crate::value::ColumnValue;

/// A pending write buffered in the delta.
#[derive(Debug, Clone)]
enum DeltaOp {
    Insert(Vec<u32>),
    Delete,
}

/// Sorted main column with a sorted out-of-place write buffer.
#[derive(Debug, Clone)]
pub struct SortedDelta<K: ColumnValue> {
    main: SortedColumn<K>,
    /// Buffered keys, ascending; per-key arrival order is preserved
    /// (equal keys append after their duplicates).
    delta_keys: Vec<K>,
    /// Operations aligned with `delta_keys`.
    delta_ops: Vec<DeltaOp>,
    /// Merge threshold: number of buffered ops that triggers a merge.
    capacity: usize,
    values_per_block: usize,
    payload_width: usize,
    merges: u64,
}

impl<K: ColumnValue> SortedDelta<K> {
    /// Build from raw values; `delta_capacity` buffered ops trigger a merge
    /// (the paper's delta stores are typically ~1% of the data size).
    pub fn build(
        values: Vec<K>,
        payload_cols: Vec<Vec<u32>>,
        values_per_block: usize,
        delta_capacity: usize,
    ) -> Self {
        let payload_width = payload_cols.len();
        Self {
            main: SortedColumn::build(values, payload_cols, values_per_block),
            delta_keys: Vec::new(),
            delta_ops: Vec::new(),
            capacity: delta_capacity.max(1),
            values_per_block,
            payload_width,
            merges: 0,
        }
    }

    /// Live row count (main plus buffered inserts minus buffered deletes).
    pub fn len_estimate(&self) -> usize {
        let ins = self
            .delta_ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::Insert(..)))
            .count();
        let del = self.delta_ops.len() - ins;
        (self.main.len() + ins).saturating_sub(del)
    }

    /// Number of merges performed so far.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Buffered (unmerged) operation count.
    pub fn delta_len(&self) -> usize {
        self.delta_keys.len()
    }

    /// The merge-trigger capacity the store was built with (persistence).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The sorted main column.
    pub fn main(&self) -> &SortedColumn<K> {
        &self.main
    }

    /// Heap bytes resident across the main column and the write buffer
    /// (buffered insert payload rows included).
    pub fn resident_bytes(&self) -> usize {
        let ops_heap: usize = self
            .delta_ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert(row) => row.capacity() * std::mem::size_of::<u32>(),
                DeltaOp::Delete => 0,
            })
            .sum();
        self.main.resident_bytes()
            + self.delta_keys.capacity() * std::mem::size_of::<K>()
            + self.delta_ops.capacity() * std::mem::size_of::<DeltaOp>()
            + ops_heap
    }

    /// Index range of buffered ops with keys in `[lo, hi)`.
    fn delta_range(&self, lo: K, hi: K) -> std::ops::Range<usize> {
        let a = self.delta_keys.partition_point(|&k| k < lo);
        let b = self.delta_keys.partition_point(|&k| k < hi);
        a..b.max(a)
    }

    /// Index range of buffered ops with key exactly `v`.
    fn delta_equal(&self, v: K) -> std::ops::Range<usize> {
        let a = self.delta_keys.partition_point(|&k| k < v);
        let b = self.delta_keys.partition_point(|&k| k <= v);
        a..b
    }

    /// Charge the cost of probing the sorted delta (one extra random probe
    /// plus the touched entries).
    fn charge_delta_probe(&self, touched: usize, cost: &mut OpCost) {
        cost.index_probes += 1;
        cost.random_reads += 1;
        cost.values_scanned += touched as u64;
    }

    /// Count of live rows equal to `v`.
    pub fn point_count(&self, v: K) -> (u64, OpCost) {
        let (r, mut cost) = self.main.point_query(v);
        let dr = self.delta_equal(v);
        self.charge_delta_probe(dr.len(), &mut cost);
        let mut count = r.len() as i64;
        for op in &self.delta_ops[dr] {
            match op {
                DeltaOp::Insert(_) => count += 1,
                DeltaOp::Delete => count -= 1,
            }
        }
        (count.max(0) as u64, cost)
    }

    /// Materialize the selected payload columns of every live row with key
    /// `v` (HAP Q1): main-column matches plus buffered inserts, with
    /// buffered deletes hiding the most recent row first.
    pub fn point_rows(&self, v: K, cols: &[usize]) -> (Vec<Vec<u32>>, OpCost) {
        let (r, mut cost) = self.main.point_query(v);
        let dr = self.delta_equal(v);
        self.charge_delta_probe(dr.len(), &mut cost);
        let mut rows: Vec<Vec<u32>> = r.map(|pos| self.main.gather_row(pos, cols)).collect();
        for op in &self.delta_ops[dr] {
            match op {
                DeltaOp::Insert(row) => rows.push(cols.iter().map(|&c| row[c]).collect()),
                DeltaOp::Delete => {
                    rows.pop();
                }
            }
        }
        (rows, cost)
    }

    /// Count of live rows in `[lo, hi)`.
    pub fn range_count(&self, lo: K, hi: K) -> (u64, OpCost) {
        let (n, mut cost) = self.main.range_count(lo, hi);
        let dr = self.delta_range(lo, hi);
        self.charge_delta_probe(dr.len(), &mut cost);
        let mut count = n as i64;
        for op in &self.delta_ops[dr] {
            match op {
                DeltaOp::Insert(_) => count += 1,
                DeltaOp::Delete => count -= 1,
            }
        }
        (count.max(0) as u64, cost)
    }

    /// Sum payload columns over `[lo, hi)`.
    pub fn range_sum_payload(&self, lo: K, hi: K, cols: &[usize]) -> (u64, OpCost) {
        let (sum, mut cost) = self.main.range_sum_payload(lo, hi, cols);
        let dr = self.delta_range(lo, hi);
        self.charge_delta_probe(dr.len(), &mut cost);
        let mut total = sum as i128;
        for (i, op) in dr.clone().zip(&self.delta_ops[dr]) {
            match op {
                DeltaOp::Insert(row) => {
                    for &c in cols {
                        total += i128::from(row[c]);
                    }
                }
                DeltaOp::Delete => {
                    let k = self.delta_keys[i];
                    let (r, _) = self.main.point_query(k);
                    if !r.is_empty() {
                        for &c in cols {
                            total -= i128::from(self.main.payload(c, r.start));
                        }
                    }
                }
            }
        }
        (total.max(0) as u64, cost)
    }

    /// Signed correction that the delta buffer contributes to a
    /// predicate-filtered payload sum over keys in `[lo, hi)` (the §6.4
    /// multi-column scan): buffered inserts add their payload when both
    /// predicates pass; a buffered delete first cancels an earlier buffered
    /// insert of its key, then hides a main row.
    pub fn replay_sum_where(
        &self,
        lo: K,
        hi: K,
        sum_cols: &[usize],
        pred_col: usize,
        pred_lo: u32,
        pred_hi: u32,
    ) -> i128 {
        let dr = self.delta_range(lo, hi);
        let mut delta_sum = 0i128;
        let mut pending: Vec<(K, i128)> = Vec::new();
        for (i, op) in dr.clone().zip(&self.delta_ops[dr]) {
            let k = self.delta_keys[i];
            match op {
                DeltaOp::Insert(row) => {
                    let v = row[pred_col];
                    let contribution = if pred_lo <= v && v < pred_hi {
                        sum_cols.iter().map(|&c| i128::from(row[c])).sum()
                    } else {
                        0
                    };
                    delta_sum += contribution;
                    pending.push((k, contribution));
                }
                DeltaOp::Delete => {
                    if let Some(pi) = pending.iter().rposition(|(pk, _)| *pk == k) {
                        let (_, contribution) = pending.remove(pi);
                        delta_sum -= contribution;
                    } else {
                        let (r, _) = self.main.point_query(k);
                        if !r.is_empty() {
                            let v = self.main.payload(pred_col, r.start);
                            if pred_lo <= v && v < pred_hi {
                                for &c in sum_cols {
                                    delta_sum -= i128::from(self.main.payload(c, r.start));
                                }
                            }
                        }
                    }
                }
            }
        }
        delta_sum
    }

    /// Ordered insertion into the sorted buffer: the shift that keeps the
    /// delta cheap to read is the write cost delta stores hide in their
    /// appends.
    fn buffer(&mut self, k: K, op: DeltaOp) -> OpCost {
        let pos = self.delta_keys.partition_point(|&x| x <= k);
        let moved = self.delta_keys.len() - pos;
        self.delta_keys.insert(pos, k);
        self.delta_ops.insert(pos, op);
        let mut cost = OpCost {
            random_writes: 1,
            ..Default::default()
        };
        cost.seq_writes += (moved.div_ceil(self.values_per_block)) as u64;
        cost
    }

    /// Buffer an insert; merges when the delta is full.
    pub fn insert(&mut self, v: K, payload: &[u32]) -> OpCost {
        let mut cost = self.buffer(v, DeltaOp::Insert(payload.to_vec()));
        cost.absorb(self.maybe_merge());
        cost
    }

    /// Buffer a delete.
    pub fn delete(&mut self, v: K) -> OpCost {
        let mut cost = self.buffer(v, DeltaOp::Delete);
        cost.absorb(self.maybe_merge());
        cost
    }

    /// Update = buffered delete + buffered insert. The payload of the old
    /// row is carried over from the main column when available.
    pub fn update(&mut self, old: K, new: K) -> OpCost {
        let (r, mut cost) = self.main.point_query(old);
        let row: Vec<u32> = if r.is_empty() {
            vec![0; self.payload_width]
        } else {
            (0..self.payload_width)
                .map(|c| self.main.payload(c, r.start))
                .collect()
        };
        cost.absorb(self.buffer(old, DeltaOp::Delete));
        cost.absorb(self.buffer(new, DeltaOp::Insert(row)));
        cost.absorb(self.maybe_merge());
        cost
    }

    /// Remove one live row equal to `v` and return its full payload row.
    /// The row returned is the one a buffered tombstone would hide (the
    /// last row [`SortedDelta::point_rows`] lists), so the take and the
    /// tombstone agree on which duplicate disappears.
    pub fn take_one(&mut self, v: K) -> (Option<Vec<u32>>, OpCost) {
        let cols: Vec<usize> = (0..self.payload_width).collect();
        let (rows, mut cost) = self.point_rows(v, &cols);
        let Some(row) = rows.last().cloned() else {
            return (None, cost);
        };
        cost.absorb(self.delete(v));
        (Some(row), cost)
    }

    fn maybe_merge(&mut self) -> OpCost {
        if self.delta_keys.len() < self.capacity {
            return OpCost::default();
        }
        self.force_merge()
    }

    /// Merge the delta into the main column immediately.
    pub fn force_merge(&mut self) -> OpCost {
        let keys = std::mem::take(&mut self.delta_keys);
        let ops = std::mem::take(&mut self.delta_ops);
        // Net out delete/insert pairs of the same key first (a buffered
        // delete cancels the most recent buffered insert, mirroring the
        // read path), so only net effects reach the main column.
        let mut inserts: Vec<(K, Vec<u32>)> = Vec::new();
        let mut deletes = Vec::new();
        for (k, op) in keys.into_iter().zip(ops) {
            match op {
                DeltaOp::Insert(row) => inserts.push((k, row)),
                DeltaOp::Delete => {
                    if let Some(i) = inserts.iter().rposition(|(ik, _)| *ik == k) {
                        inserts.remove(i);
                    } else {
                        deletes.push(k);
                    }
                }
            }
        }
        self.merges += 1;
        self.main.merge(inserts, &deletes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd() -> SortedDelta<u64> {
        SortedDelta::build((1..=8).collect(), Vec::new(), 2, 4)
    }

    #[test]
    fn reads_see_buffered_writes() {
        let mut d = sd();
        d.insert(100, &[]);
        assert_eq!(d.point_count(100).0, 1);
        assert_eq!(d.range_count(50, 200).0, 1);
        d.delete(3);
        assert_eq!(d.point_count(3).0, 0);
        assert_eq!(d.range_count(1, 9).0, 7);
    }

    #[test]
    fn merge_triggers_at_capacity() {
        let mut d = sd();
        d.insert(10, &[]);
        d.insert(11, &[]);
        d.insert(12, &[]);
        assert_eq!(d.merge_count(), 0);
        d.insert(13, &[]); // 4th op hits capacity
        assert_eq!(d.merge_count(), 1);
        assert_eq!(d.delta_len(), 0);
        assert_eq!(d.main().len(), 12);
        assert_eq!(d.point_count(12).0, 1);
    }

    #[test]
    fn update_moves_value() {
        let mut d = sd();
        d.update(5, 50);
        assert_eq!(d.point_count(5).0, 0);
        assert_eq!(d.point_count(50).0, 1);
        d.force_merge();
        assert!(d.main().values().contains(&50));
        assert!(!d.main().values().contains(&5));
    }

    #[test]
    fn len_estimate_tracks_ops() {
        let mut d = sd();
        assert_eq!(d.len_estimate(), 8);
        d.insert(9, &[]);
        d.delete(1);
        assert_eq!(d.len_estimate(), 8);
    }

    #[test]
    fn buffer_stays_sorted_and_insert_pays_shift() {
        let mut d = SortedDelta::build((1u64..=8).collect(), Vec::new(), 2, 1000);
        // Filling from the high end forces shifts for low keys.
        for k in (20..40u64).rev() {
            d.insert(k, &[]);
        }
        let c = d.insert(10, &[]); // must shift all 20 buffered entries
        assert!(
            c.seq_writes > 0,
            "ordered insertion must pay a shift: {c:?}"
        );
        assert!(d.delta_len() == 21);
        // Buffer sorted → range counting via binary search stays exact.
        assert_eq!(d.range_count(10, 40).0, 21);
    }

    #[test]
    fn deletes_hide_buffered_inserts_in_order() {
        let mut d = sd();
        d.insert(100, &[]);
        d.insert(100, &[]);
        d.delete(100);
        assert_eq!(d.point_count(100).0, 1);
        d.delete(100);
        assert_eq!(d.point_count(100).0, 0);
    }

    #[test]
    fn merge_cost_scales_with_main_size() {
        let mut small = SortedDelta::build((1..=8).collect::<Vec<u64>>(), Vec::new(), 2, 1);
        let mut large = SortedDelta::build((1..=80).collect::<Vec<u64>>(), Vec::new(), 2, 1);
        let cs = small.insert(0, &[]);
        let cl = large.insert(0, &[]);
        assert!(cl.seq_writes > cs.seq_writes, "merge must touch whole main");
    }

    #[test]
    fn range_sum_payload_accounts_for_delta() {
        let mut d = SortedDelta::build(vec![1u64, 2, 3], vec![vec![10, 20, 30]], 2, 100);
        d.insert(4, &[40]);
        d.delete(2);
        let (sum, _) = d.range_sum_payload(1, 5, &[0]);
        assert_eq!(sum, 10 + 30 + 40);
    }

    #[test]
    fn replay_sum_where_cancels_buffered_inserts() {
        let mut d = SortedDelta::build(vec![1u64, 2, 3], vec![vec![10, 20, 30]], 2, 100);
        d.insert(4, &[40]);
        d.delete(4); // cancels the buffered insert, not a main row
        let corr = d.replay_sum_where(0, 10, &[0], 0, 0, u32::MAX);
        assert_eq!(corr, 0);
    }
}
