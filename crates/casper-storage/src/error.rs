//! Error types for the storage layer.

use std::fmt;

/// Errors surfaced by storage-layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The chunk has no free slot left (live values + ghost slots have
    /// reached physical capacity). Chunk splitting is out of scope for this
    /// reproduction (see DESIGN.md §7); callers should size chunks with
    /// slack via [`crate::ChunkConfig::capacity_slack`].
    ChunkFull {
        /// Physical capacity of the chunk in slots.
        capacity: usize,
    },
    /// A partitioning specification did not cover the chunk exactly.
    InvalidSpec {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// A ghost-value plan referenced more partitions than the spec defines.
    GhostPlanMismatch {
        /// Partitions in the spec.
        partitions: usize,
        /// Entries in the ghost plan.
        plan_entries: usize,
    },
    /// A payload row had the wrong number of columns.
    PayloadArity {
        /// Columns the chunk stores.
        expected: usize,
        /// Columns the caller supplied.
        got: usize,
    },
    /// Persisted state failed a checksum, length, or structural-invariant
    /// check while being restored. Surfaced as a typed error (never a
    /// panic) so recovery code can reject a damaged snapshot/WAL and fall
    /// back to an older generation.
    Corrupt {
        /// Human-readable description of the first violation found.
        reason: String,
    },
    /// A chunk's persisted record was found damaged (by a scrub pass)
    /// while the chunk itself was never hydrated: its data exists nowhere
    /// in memory to heal from, so hydration is refused with this typed
    /// error instead of failing the record's CRC mid-query.
    Quarantined {
        /// Index of the quarantined chunk.
        chunk: u64,
        /// Why its record was quarantined (the scrub finding).
        reason: String,
    },
    /// A query's deadline expired at a chunk boundary. Cooperative: the
    /// scan loop noticed the expiry and unwound cleanly, leaving all
    /// shared state (snapshots, hydration, fences) untouched.
    DeadlineExceeded,
    /// A query's cancel token was flipped at a chunk boundary. Same
    /// cooperative unwind guarantees as [`StorageError::DeadlineExceeded`].
    Cancelled,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ChunkFull { capacity } => {
                write!(f, "chunk is full (capacity {capacity} slots)")
            }
            StorageError::InvalidSpec { reason } => {
                write!(f, "invalid partition spec: {reason}")
            }
            StorageError::GhostPlanMismatch {
                partitions,
                plan_entries,
            } => write!(
                f,
                "ghost plan has {plan_entries} entries but spec has {partitions} partitions"
            ),
            StorageError::PayloadArity { expected, got } => {
                write!(f, "payload row has {got} columns, chunk stores {expected}")
            }
            StorageError::Corrupt { reason } => {
                write!(f, "corrupt persisted state: {reason}")
            }
            StorageError::Quarantined { chunk, reason } => {
                write!(
                    f,
                    "chunk {chunk} is quarantined (damaged on disk, no \
                     in-memory copy): {reason}"
                )
            }
            StorageError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            StorageError::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::ChunkFull { capacity: 128 };
        assert!(e.to_string().contains("128"));
        let e = StorageError::GhostPlanMismatch {
            partitions: 4,
            plan_entries: 7,
        };
        assert!(e.to_string().contains('4') && e.to_string().contains('7'));
    }
}
