//! Ghost-value plans: how many empty buffer slots each partition receives.
//!
//! Ghost values (§2, §4.6) are empty slots interspersed at the end of each
//! partition. They trade memory amplification for update performance: an
//! insert that finds a ghost slot in its target partition avoids the ripple
//! entirely, and a delete simply turns a live slot into a ghost.
//!
//! This module only describes *plans* (per-partition slot counts); the
//! optimizer in `casper-core` computes workload-optimal plans via Eq. 18,
//! and [`crate::PartitionedChunk`] materializes them.

/// Per-partition ghost slot counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GhostPlan {
    counts: Vec<usize>,
}

impl GhostPlan {
    /// No ghost slots anywhere (the dense layouts of the paper's baselines).
    pub fn none(partitions: usize) -> Self {
        Self {
            counts: vec![0; partitions],
        }
    }

    /// Spread `total` ghost slots as evenly as possible (the `Equi-GV`
    /// baseline of §7): the first `total % partitions` partitions get one
    /// extra slot.
    pub fn even(partitions: usize, total: usize) -> Self {
        assert!(partitions > 0);
        let base = total / partitions;
        let rem = total % partitions;
        Self {
            counts: (0..partitions)
                .map(|p| base + usize::from(p < rem))
                .collect(),
        }
    }

    /// Explicit per-partition counts.
    pub fn from_counts(counts: Vec<usize>) -> Self {
        Self { counts }
    }

    /// Distribute `total` slots proportionally to non-negative `weights`
    /// using the largest-remainder method, so the counts sum to exactly
    /// `total`. A zero weight vector degrades to [`GhostPlan::even`].
    ///
    /// This is the arithmetic behind Eq. 18
    /// (`GValloc(i) = dm_part(i) / dm_tot * GVtot`).
    pub fn proportional(weights: &[f64], total: usize) -> Self {
        assert!(!weights.is_empty());
        debug_assert!(weights.iter().all(|&w| w >= 0.0));
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Self::even(weights.len(), total);
        }
        let mut counts = Vec::with_capacity(weights.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
        let mut assigned = 0usize;
        for (i, &w) in weights.iter().enumerate() {
            let exact = w / sum * total as f64;
            let floor = exact.floor() as usize;
            assigned += floor;
            counts.push(floor);
            remainders.push((i, exact - floor as f64));
        }
        // Hand the leftover slots to the largest fractional remainders.
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for &(i, _) in remainders.iter().take(total - assigned) {
            counts[i] += 1;
        }
        Self { counts }
    }

    /// Per-partition slot counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total ghost slots in the plan.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Number of partitions covered.
    pub fn partitions(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_all_zero() {
        let p = GhostPlan::none(4);
        assert_eq!(p.counts(), &[0, 0, 0, 0]);
        assert_eq!(p.total(), 0);
    }

    #[test]
    fn even_distributes_remainder_to_front() {
        let p = GhostPlan::even(4, 10);
        assert_eq!(p.counts(), &[3, 3, 2, 2]);
        assert_eq!(p.total(), 10);
    }

    #[test]
    fn proportional_sums_to_total() {
        let p = GhostPlan::proportional(&[1.0, 2.0, 1.0], 8);
        assert_eq!(p.total(), 8);
        assert_eq!(p.counts(), &[2, 4, 2]);
    }

    #[test]
    fn proportional_largest_remainder() {
        // Exact shares: 3.33, 3.33, 3.33 → floors 3,3,3, one leftover goes
        // to the largest remainder (ties broken by sort stability).
        let p = GhostPlan::proportional(&[1.0, 1.0, 1.0], 10);
        assert_eq!(p.total(), 10);
        assert!(p.counts().iter().all(|&c| c == 3 || c == 4));
    }

    #[test]
    fn proportional_zero_weights_falls_back_to_even() {
        let p = GhostPlan::proportional(&[0.0, 0.0], 5);
        assert_eq!(p.counts(), &[3, 2]);
    }

    #[test]
    fn proptest_proportional_invariants() {
        use proptest::prelude::*;
        proptest!(|(weights in proptest::collection::vec(0.0f64..100.0, 1..40),
                    total in 0usize..500)| {
            let p = GhostPlan::proportional(&weights, total);
            prop_assert_eq!(p.total(), total);
            prop_assert_eq!(p.partitions(), weights.len());
        });
    }
}
