//! Per-partition metadata (§6.3 "Locating Partitions").
//!
//! For every partition Casper stores the value range it covers and its
//! positional extent within the chunk, which is exactly the Zonemap-style
//! metadata the paper describes. Partitions are physically contiguous:
//! partition `i` occupies slots `[start, start + len + ghosts)` where the
//! first `len` slots hold live values (unordered) and the trailing `ghosts`
//! slots are empty buffer space (Fig. 5).

use crate::value::ColumnValue;

/// Metadata for one range partition inside a [`crate::PartitionedChunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionMeta<K: ColumnValue> {
    /// First physical slot of the partition.
    pub start: usize,
    /// Number of live values.
    pub len: usize,
    /// Number of ghost (empty) slots trailing the live values.
    pub ghosts: usize,
    /// Lower bound (inclusive) of the values this partition may contain.
    ///
    /// Bounds are maintained conservatively: they widen on inserts but are
    /// not re-tightened on deletes, so they remain *covering* at all times.
    pub min: K,
    /// Upper bound (inclusive) of the values this partition may contain.
    pub max: K,
}

impl<K: ColumnValue> PartitionMeta<K> {
    /// One-past-the-end of the live value region.
    #[inline]
    pub fn live_end(&self) -> usize {
        self.start + self.len
    }

    /// One-past-the-end of the partition's physical extent (live + ghosts).
    #[inline]
    pub fn extent_end(&self) -> usize {
        self.start + self.len + self.ghosts
    }

    /// Whether the partition currently buffers at least one ghost slot.
    #[inline]
    pub fn has_ghosts(&self) -> bool {
        self.ghosts > 0
    }

    /// Whether `v` falls inside this partition's covering range.
    #[inline]
    pub fn covers(&self, v: K) -> bool {
        self.min <= v && v <= self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> PartitionMeta<u64> {
        PartitionMeta {
            start: 10,
            len: 5,
            ghosts: 2,
            min: 100,
            max: 200,
        }
    }

    #[test]
    fn extents() {
        let m = meta();
        assert_eq!(m.live_end(), 15);
        assert_eq!(m.extent_end(), 17);
        assert!(m.has_ghosts());
    }

    #[test]
    fn covering_range_is_inclusive() {
        let m = meta();
        assert!(m.covers(100));
        assert!(m.covers(200));
        assert!(m.covers(150));
        assert!(!m.covers(99));
        assert!(!m.covers(201));
    }

    #[test]
    fn no_ghosts_extent_equals_live_end() {
        let m = PartitionMeta::<u64> {
            start: 0,
            len: 3,
            ghosts: 0,
            min: 0,
            max: 10,
        };
        assert_eq!(m.live_end(), m.extent_end());
        assert!(!m.has_ghosts());
    }
}
