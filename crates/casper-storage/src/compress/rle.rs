//! Run-length encoding (RLE).
//!
//! Included to reproduce the paper's §6.2 comparison: RLE "requires the
//! data to be sorted in order to calculate the run lengths, and it always
//! requires a more expensive decoding step when updating". [`Rle::encode`]
//! therefore asserts sortedness, and [`Rle::update_cost_model`] quantifies
//! the decode/re-encode penalty that makes dictionary/FoR preferable for
//! updatable columns.

use super::Codec;
use crate::value::ColumnValue;

/// A run-length encoded sorted fragment.
#[derive(Debug, Clone)]
pub struct Rle<K: ColumnValue> {
    /// `(value, run_length)` pairs in ascending value order.
    runs: Vec<(K, u32)>,
    total: usize,
}

impl<K: ColumnValue> Rle<K> {
    /// Encode a **sorted** fragment.
    ///
    /// # Panics
    /// Panics if `values` is not sorted ascending (RLE's precondition per
    /// §6.2).
    pub fn encode(values: &[K]) -> Self {
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "RLE requires sorted input"
        );
        let mut runs: Vec<(K, u32)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((rv, n)) if *rv == v => *n += 1,
                _ => runs.push((v, 1)),
            }
        }
        Self {
            runs,
            total: values.len(),
        }
    }

    /// The encoded runs.
    pub fn runs(&self) -> &[(K, u32)] {
        &self.runs
    }

    /// Modeled cost (in values touched) of updating one value: the whole
    /// fragment must be decoded and re-encoded, vs. `1` for an in-place
    /// dictionary/FoR write. This is the §6.2 argument in one number.
    pub fn update_cost_model(&self) -> usize {
        2 * self.total // decode + re-encode passes
    }
}

impl<K: ColumnValue> Codec<K> for Rle<K> {
    fn decode(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.total);
        for &(v, n) in &self.runs {
            out.extend(std::iter::repeat_n(v, n as usize));
        }
        out
    }

    fn encoded_bytes(&self) -> usize {
        self.runs.len() * (K::WIDTH + 4)
    }

    fn len(&self) -> usize {
        self.total
    }

    fn count_in_range(&self, lo: K, hi: K) -> u64 {
        if hi <= lo {
            return 0;
        }
        self.runs
            .iter()
            .filter(|(v, _)| lo <= *v && *v < hi)
            .map(|&(_, n)| u64::from(n))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let vals: Vec<u64> = vec![1, 1, 1, 2, 3, 3];
        let r = Rle::encode(&vals);
        assert_eq!(r.decode(), vals);
        assert_eq!(r.runs(), &[(1, 3), (2, 1), (3, 2)]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted() {
        let _ = Rle::encode(&[3u64, 1, 2]);
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let vals: Vec<u64> = std::iter::repeat_n(7u64, 10_000).collect();
        let r = Rle::encode(&vals);
        assert_eq!(r.runs().len(), 1);
        assert!(r.encoded_bytes() < 10_000 * 8 / 100);
    }

    #[test]
    fn count_in_range_matches_plain() {
        let vals: Vec<u64> = vec![1, 1, 5, 5, 5, 9];
        let r = Rle::encode(&vals);
        for (lo, hi) in [(0, 10), (1, 2), (5, 6), (2, 5), (9, 9)] {
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            assert_eq!(r.count_in_range(lo, hi), want, "[{lo},{hi})");
        }
    }

    #[test]
    fn update_cost_reflects_full_decode() {
        let r = Rle::encode(&vec![1u64; 500]);
        assert_eq!(r.update_cost_model(), 1000);
    }
}
