//! Run-length encoding (RLE).
//!
//! Included to reproduce the paper's §6.2 comparison: RLE "requires the
//! data to be sorted in order to calculate the run lengths, and it always
//! requires a more expensive decoding step when updating". [`Rle::encode`]
//! therefore asserts sortedness, and [`Rle::update_cost_model`] quantifies
//! the decode/re-encode penalty that makes dictionary/FoR preferable for
//! updatable columns.
//!
//! Because the runs are sorted by value, every range predicate reduces to
//! *run arithmetic*: two binary searches locate the first and last
//! qualifying runs, and the prefix-summed run lengths ([`Rle::prefix`])
//! turn the answer into a subtraction — the compressed kernels never walk
//! the runs at all.

use super::Codec;
use crate::value::ColumnValue;

/// A run-length encoded sorted fragment.
#[derive(Debug, Clone)]
pub struct Rle<K: ColumnValue> {
    /// `(value, run_length)` pairs in ascending value order.
    runs: Vec<(K, u32)>,
    /// `prefix[i]` = decoded index of run `i`'s first value;
    /// `prefix[runs.len()]` = total decoded length. Derived metadata, not
    /// counted in [`Codec::encoded_bytes`].
    prefix: Vec<u64>,
    total: usize,
}

impl<K: ColumnValue> Rle<K> {
    /// Encode a **sorted** fragment.
    ///
    /// # Panics
    /// Panics if `values` is not sorted ascending (RLE's precondition per
    /// §6.2).
    pub fn encode(values: &[K]) -> Self {
        assert!(
            values.windows(2).all(|w| w[0] <= w[1]),
            "RLE requires sorted input"
        );
        super::telemetry::note_encode();
        let mut runs: Vec<(K, u32)> = Vec::new();
        for &v in values {
            match runs.last_mut() {
                Some((rv, n)) if *rv == v => *n += 1,
                _ => runs.push((v, 1)),
            }
        }
        Self::with_prefix(runs)
    }

    /// Reassemble a fragment from its persisted runs *without* touching the
    /// decoded values (snapshot restore). Only the prefix sums — derived
    /// metadata — are recomputed, in O(runs). Rejects unsorted or
    /// zero-length runs so damaged snapshots fail loudly but typedly.
    pub fn from_runs(runs: Vec<(K, u32)>) -> Result<Self, String> {
        if runs.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err("RLE runs not sorted strictly ascending by value".into());
        }
        if runs.iter().any(|&(_, n)| n == 0) {
            return Err("RLE run with zero length".into());
        }
        Ok(Self::with_prefix(runs))
    }

    fn with_prefix(runs: Vec<(K, u32)>) -> Self {
        let mut prefix = Vec::with_capacity(runs.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for &(_, n) in &runs {
            acc += u64::from(n);
            prefix.push(acc);
        }
        Self {
            total: acc as usize,
            runs,
            prefix,
        }
    }

    /// The encoded runs.
    pub fn runs(&self) -> &[(K, u32)] {
        &self.runs
    }

    /// Prefix-summed run lengths (`len + 1` entries; see struct docs).
    pub fn prefix(&self) -> &[u64] {
        &self.prefix
    }

    /// Decoded index range `[start, end)` of the values in `[lo, hi)` —
    /// the run-arithmetic primitive behind every compressed RLE kernel.
    /// Returns an empty range (`start == end`) when nothing qualifies.
    pub fn index_range(&self, lo: K, hi: K) -> (u64, u64) {
        if hi <= lo {
            return (0, 0);
        }
        let first = self.runs.partition_point(|&(v, _)| v < lo);
        let last = self.runs.partition_point(|&(v, _)| v < hi);
        (self.prefix[first], self.prefix[last])
    }

    /// Modeled cost (in values touched) of updating one value: the whole
    /// fragment must be decoded and re-encoded, vs. `1` for an in-place
    /// dictionary/FoR write. This is the §6.2 argument in one number.
    pub fn update_cost_model(&self) -> usize {
        2 * self.total // decode + re-encode passes
    }
}

impl<K: ColumnValue> Codec<K> for Rle<K> {
    fn decode(&self) -> Vec<K> {
        super::telemetry::note_decode();
        let mut out = Vec::with_capacity(self.total);
        for &(v, n) in &self.runs {
            out.extend(std::iter::repeat_n(v, n as usize));
        }
        out
    }

    fn encoded_bytes(&self) -> usize {
        self.runs.len() * (K::WIDTH + 4)
    }

    fn len(&self) -> usize {
        self.total
    }

    fn count_in_range(&self, lo: K, hi: K) -> u64 {
        let (start, end) = self.index_range(lo, hi);
        end - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let vals: Vec<u64> = vec![1, 1, 1, 2, 3, 3];
        let r = Rle::encode(&vals);
        assert_eq!(r.decode(), vals);
        assert_eq!(r.runs(), &[(1, 3), (2, 1), (3, 2)]);
        assert_eq!(r.prefix(), &[0, 3, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn rejects_unsorted() {
        let _ = Rle::encode(&[3u64, 1, 2]);
    }

    #[test]
    fn repetitive_data_compresses_hard() {
        let vals: Vec<u64> = std::iter::repeat_n(7u64, 10_000).collect();
        let r = Rle::encode(&vals);
        assert_eq!(r.runs().len(), 1);
        assert!(r.encoded_bytes() < 10_000 * 8 / 100);
    }

    #[test]
    fn count_in_range_matches_plain() {
        let vals: Vec<u64> = vec![1, 1, 5, 5, 5, 9];
        let r = Rle::encode(&vals);
        for (lo, hi) in [(0, 10), (1, 2), (5, 6), (2, 5), (9, 9)] {
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            assert_eq!(r.count_in_range(lo, hi), want, "[{lo},{hi})");
        }
    }

    #[test]
    fn index_range_is_run_arithmetic() {
        let r = Rle::encode(&[1u64, 1, 5, 5, 5, 9]);
        assert_eq!(r.index_range(1, 6), (0, 5));
        assert_eq!(r.index_range(5, 10), (2, 6));
        assert_eq!(r.index_range(2, 5), (2, 2)); // nothing between runs
        assert_eq!(r.index_range(9, 3), (0, 0)); // inverted
    }

    #[test]
    fn update_cost_reflects_full_decode() {
        let r = Rle::encode(&vec![1u64; 500]);
        assert_eq!(r.update_cost_model(), 1000);
    }
}
