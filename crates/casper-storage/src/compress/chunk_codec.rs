//! Per-partition compression of a partitioned chunk (§6.2 integration).
//!
//! "When delta encoding is used, a synergy between the partitioning and
//! the compression effort is created. In fact, Casper tends to finely
//! partition areas that attract more queries, thus enabling better delta
//! compression since the value range of small partitions is also small.
//! ... The more we read a partition the more compressed it is, leading to
//! less overall data movement."
//!
//! [`CompressedChunk`] snapshots a [`PartitionedChunk`]'s live data with
//! one frame-of-reference fragment per partition and answers range counts
//! directly on the encoded representation. It is the read-optimized
//! "frozen" form a chunk can be flipped into between update bursts.

use super::for_delta::ForBlock;
use super::Codec;
use crate::chunk::PartitionedChunk;
use crate::value::ColumnValue;

/// A frame-of-reference compressed snapshot of a partitioned chunk.
#[derive(Debug, Clone)]
pub struct CompressedChunk<K: ColumnValue> {
    /// One FoR fragment per partition (live values, sorted).
    fragments: Vec<ForBlock<K>>,
    /// Inclusive upper bound per partition for routing.
    bounds: Vec<K>,
    live: usize,
}

impl<K: ColumnValue> CompressedChunk<K> {
    /// Snapshot a chunk: each partition's live values become one sorted
    /// FoR fragment.
    pub fn from_chunk(chunk: &PartitionedChunk<K>) -> Self {
        let mut fragments = Vec::with_capacity(chunk.partition_count());
        let mut bounds = Vec::with_capacity(chunk.partition_count());
        for (p, meta) in chunk.partitions().iter().enumerate() {
            let mut vals = chunk.partition_values(p).to_vec();
            vals.sort_unstable();
            fragments.push(ForBlock::encode(&vals));
            bounds.push(meta.max);
        }
        Self {
            fragments,
            bounds,
            live: chunk.live_len(),
        }
    }

    /// Total live values.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the snapshot holds no values.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Encoded payload size in bytes.
    pub fn encoded_bytes(&self) -> usize {
        self.fragments.iter().map(Codec::encoded_bytes).sum()
    }

    /// Compression ratio against the plain fixed-width representation.
    pub fn compression_ratio(&self) -> f64 {
        super::compression_ratio(self.live * K::WIDTH, self.encoded_bytes())
    }

    /// Count live values in `[lo, hi)` without decompressing: partitions
    /// fully inside the range contribute their cardinality, boundary
    /// partitions scan their encoded offsets.
    pub fn range_count(&self, lo: K, hi: K) -> u64 {
        if hi <= lo {
            return 0;
        }
        let mut total = 0u64;
        let mut prev_bound: Option<K> = None;
        for (frag, &bound) in self.fragments.iter().zip(&self.bounds) {
            let below = prev_bound.is_some_and(|p| p >= hi);
            prev_bound = Some(bound);
            if below {
                break;
            }
            // Partition fully inside: all values qualify.
            let part_min_above_lo = match prev_bound {
                _ if frag.is_empty() => {
                    continue;
                }
                _ => K::from_ordered_u64(frag.base()),
            };
            if lo <= part_min_above_lo && bound < hi {
                total += frag.len() as u64;
            } else {
                total += frag.count_in_range(lo, hi);
            }
        }
        total
    }

    /// Decode everything back (snapshot restore).
    pub fn decode_all(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.live);
        for f in &self.fragments {
            out.extend(f.decode());
        }
        out
    }

    /// Per-fragment encoded widths — the §6.2 synergy made visible.
    pub fn fragment_widths(&self) -> Vec<super::for_delta::OffsetWidth> {
        self.fragments.iter().map(ForBlock::width).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ghost::GhostPlan;
    use crate::layout::{BlockLayout, PartitionSpec};
    use crate::ChunkConfig;

    fn layout() -> BlockLayout {
        BlockLayout {
            block_bytes: 64,
            value_width: 8,
        } // 8 values per block
    }

    fn chunk(values: Vec<u64>, sizes: &[usize]) -> PartitionedChunk<u64> {
        PartitionedChunk::build(
            values,
            &PartitionSpec::from_block_sizes(sizes),
            layout(),
            &GhostPlan::none(sizes.len()),
            ChunkConfig::default(),
        )
        .expect("build")
    }

    #[test]
    fn snapshot_round_trips() {
        let values: Vec<u64> = (0..64u64).map(|i| i * 7).collect();
        let c = chunk(values.clone(), &[4, 4]);
        let z = CompressedChunk::from_chunk(&c);
        assert_eq!(z.len(), 64);
        let mut decoded = z.decode_all();
        decoded.sort_unstable();
        assert_eq!(decoded, values);
    }

    #[test]
    fn range_count_matches_chunk() {
        let values: Vec<u64> = (0..128u64).map(|i| i * 3).collect();
        let c = chunk(values, &[4, 4, 4, 4]);
        let z = CompressedChunk::from_chunk(&c);
        for (lo, hi) in [(0u64, 1000), (10, 50), (100, 101), (383, 385), (50, 10)] {
            let (want, _) = c.range_count(lo, hi);
            assert_eq!(z.range_count(lo, hi), want, "range [{lo},{hi})");
        }
    }

    #[test]
    fn finer_partitions_compress_better() {
        // Wide-domain data: whole-chunk offsets need 4 bytes, per-partition
        // offsets fit in 2.
        let values: Vec<u64> = (0..512u64).map(|i| i * 300).collect();
        let coarse = CompressedChunk::from_chunk(&chunk(values.clone(), &[64]));
        let fine = CompressedChunk::from_chunk(&chunk(values, &[8; 8]));
        assert!(
            fine.encoded_bytes() < coarse.encoded_bytes(),
            "fine {} vs coarse {}",
            fine.encoded_bytes(),
            coarse.encoded_bytes()
        );
        assert!(fine.compression_ratio() > coarse.compression_ratio());
    }

    #[test]
    fn survives_updates_before_snapshot() {
        let values: Vec<u64> = (0..64u64).map(|i| i * 2).collect();
        let mut c = chunk(values, &[4, 4]);
        c.insert(33, &[]).expect("insert");
        c.delete(10);
        c.update(20, 21).expect("update");
        let z = CompressedChunk::from_chunk(&c);
        assert_eq!(z.len(), c.live_len());
        assert_eq!(z.range_count(0, 1000), c.live_len() as u64);
        assert_eq!(z.range_count(33, 34), 1);
        assert_eq!(z.range_count(10, 11), 0);
    }
}
