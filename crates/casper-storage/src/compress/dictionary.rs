//! Order-preserving dictionary compression.
//!
//! Distinct values are collected into a sorted dictionary; the column
//! stores fixed-width codes (u8/u16/u32 chosen by cardinality, physically
//! packed). Because the dictionary is sorted, range predicates translate to
//! code-range predicates and scans run directly over the codes —
//! "dictionary compression is supported by Casper as-is" (§6.2). The
//! code-space rewrite (`lower_bound_code` on both bounds) is what the
//! compressed kernels in [`crate::kernels::compressed`] use: a value range
//! stays a range in code space, so the packed code lane is scanned with the
//! same branchless rebased compare as a plain column.

use super::Codec;
use crate::value::ColumnValue;

/// Code width chosen from the dictionary cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeWidth {
    /// ≤ 256 distinct values.
    U8,
    /// ≤ 65 536 distinct values.
    U16,
    /// anything larger (up to u32::MAX codes).
    U32,
}

impl CodeWidth {
    /// The narrowest width that can code `n` distinct values.
    pub fn for_cardinality(n: usize) -> Self {
        if n <= u8::MAX as usize + 1 {
            CodeWidth::U8
        } else if n <= u16::MAX as usize + 1 {
            CodeWidth::U16
        } else {
            CodeWidth::U32
        }
    }

    /// Bytes per stored code.
    pub fn bytes(self) -> usize {
        match self {
            CodeWidth::U8 => 1,
            CodeWidth::U16 => 2,
            CodeWidth::U32 => 4,
        }
    }
}

/// Physically packed code column, scanned directly by the compressed
/// kernels.
#[derive(Debug, Clone)]
pub enum PackedCodes {
    /// One byte per code.
    U8(Vec<u8>),
    /// Two bytes per code.
    U16(Vec<u16>),
    /// Four bytes per code.
    U32(Vec<u32>),
}

impl PackedCodes {
    fn pack(codes: impl Iterator<Item = u32>, width: CodeWidth) -> Self {
        match width {
            CodeWidth::U8 => PackedCodes::U8(codes.map(|c| c as u8).collect()),
            CodeWidth::U16 => PackedCodes::U16(codes.map(|c| c as u16).collect()),
            CodeWidth::U32 => PackedCodes::U32(codes.collect()),
        }
    }

    /// Number of packed codes.
    pub fn len(&self) -> usize {
        match self {
            PackedCodes::U8(v) => v.len(),
            PackedCodes::U16(v) => v.len(),
            PackedCodes::U32(v) => v.len(),
        }
    }

    /// Whether no codes are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width class of the packing.
    pub fn width(&self) -> CodeWidth {
        match self {
            PackedCodes::U8(_) => CodeWidth::U8,
            PackedCodes::U16(_) => CodeWidth::U16,
            PackedCodes::U32(_) => CodeWidth::U32,
        }
    }

    /// Code at position `i`, widened.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        match self {
            PackedCodes::U8(v) => u32::from(v[i]),
            PackedCodes::U16(v) => u32::from(v[i]),
            PackedCodes::U32(v) => v[i],
        }
    }
}

/// An order-preserving dictionary-encoded column fragment.
#[derive(Debug, Clone)]
pub struct Dictionary<K: ColumnValue> {
    /// Sorted distinct values; index = code.
    dict: Vec<K>,
    /// One packed code per row.
    codes: PackedCodes,
}

impl<K: ColumnValue> Dictionary<K> {
    /// Encode a column fragment.
    pub fn encode(values: &[K]) -> Self {
        super::telemetry::note_encode();
        let mut dict: Vec<K> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let width = CodeWidth::for_cardinality(dict.len());
        let codes = PackedCodes::pack(
            values
                .iter()
                .map(|v| dict.binary_search(v).expect("value in dict") as u32),
            width,
        );
        Self { dict, codes }
    }

    /// Reassemble a fragment from its persisted raw parts *without*
    /// re-encoding (snapshot restore). Rejects structurally impossible
    /// state — an unsorted dictionary or a code past the dictionary end —
    /// so a damaged snapshot surfaces as an error instead of a later panic.
    pub fn from_raw(dict: Vec<K>, codes: PackedCodes) -> Result<Self, String> {
        if dict.windows(2).any(|w| w[0] >= w[1]) {
            return Err("dictionary not sorted strictly ascending".into());
        }
        let n = dict.len() as u32;
        for i in 0..codes.len() {
            if codes.get(i) >= n {
                return Err(format!("code {} out of range (dict has {n})", codes.get(i)));
            }
        }
        Ok(Self { dict, codes })
    }

    /// The sorted dictionary.
    pub fn dict(&self) -> &[K] {
        &self.dict
    }

    /// The packed per-row codes.
    pub fn codes(&self) -> &PackedCodes {
        &self.codes
    }

    /// Packed code width.
    pub fn width(&self) -> CodeWidth {
        self.codes.width()
    }

    /// Value at encoded position `i` (same order as the input slice).
    #[inline]
    pub fn get(&self, i: usize) -> K {
        self.dict[self.codes.get(i) as usize]
    }

    /// Translate a value to the first code whose value is `>= v` (for
    /// predicate pushdown). Returns `dict.len()` when `v` exceeds all.
    pub fn lower_bound_code(&self, v: K) -> u32 {
        self.dict.partition_point(|&d| d < v) as u32
    }

    /// Exact code of `v`, if present.
    pub fn exact_code(&self, v: K) -> Option<u32> {
        self.dict.binary_search(&v).ok().map(|c| c as u32)
    }
}

impl<K: ColumnValue> Codec<K> for Dictionary<K> {
    fn decode(&self) -> Vec<K> {
        super::telemetry::note_decode();
        (0..self.codes.len())
            .map(|i| self.dict[self.codes.get(i) as usize])
            .collect()
    }

    fn encoded_bytes(&self) -> usize {
        self.dict.len() * K::WIDTH + self.codes.len() * self.width().bytes()
    }

    fn len(&self) -> usize {
        self.codes.len()
    }

    fn count_in_range(&self, lo: K, hi: K) -> u64 {
        crate::kernels::compressed::dict_count_range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let vals: Vec<u64> = vec![5, 3, 5, 5, 9, 3, 1];
        let d = Dictionary::encode(&vals);
        assert_eq!(d.decode(), vals);
        assert_eq!(d.dict(), &[1, 3, 5, 9]);
    }

    #[test]
    fn code_width_scales_with_cardinality() {
        let small: Vec<u64> = (0..10).collect();
        assert_eq!(Dictionary::encode(&small).width(), CodeWidth::U8);
        let medium: Vec<u64> = (0..300).collect();
        assert_eq!(Dictionary::encode(&medium).width(), CodeWidth::U16);
        let large: Vec<u64> = (0..70_000).collect();
        assert_eq!(Dictionary::encode(&large).width(), CodeWidth::U32);
    }

    #[test]
    fn codes_are_physically_packed() {
        let d = Dictionary::encode(&[30u64, 10, 20, 30]);
        assert!(matches!(d.codes(), PackedCodes::U8(v) if v == &[2, 0, 1, 2]));
        assert_eq!(d.get(2), 20);
        assert_eq!(d.exact_code(30), Some(2));
        assert_eq!(d.exact_code(15), None);
    }

    #[test]
    fn compression_beats_plain_for_low_cardinality() {
        let vals: Vec<u64> = (0..1000).map(|i| (i % 4) as u64).collect();
        let d = Dictionary::encode(&vals);
        // 4 dict entries * 8B + 1000 codes * 1B ≈ 1032 vs 8000 plain.
        assert!(d.encoded_bytes() < 8000 / 4);
    }

    #[test]
    fn count_in_range_matches_plain_scan() {
        let vals: Vec<u64> = vec![10, 20, 30, 20, 40, 10, 50];
        let d = Dictionary::encode(&vals);
        for (lo, hi) in [(0, 100), (15, 35), (20, 21), (60, 70), (30, 10)] {
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            assert_eq!(d.count_in_range(lo, hi), want, "range [{lo},{hi})");
        }
    }

    #[test]
    fn proptest_dictionary_round_trip_and_scan() {
        use proptest::prelude::*;
        proptest!(|(vals in proptest::collection::vec(0u64..500, 0..200),
                    lo in 0u64..600, hi in 0u64..600)| {
            if vals.is_empty() { return Ok(()); }
            let d = Dictionary::encode(&vals);
            prop_assert_eq!(d.decode(), vals.clone());
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            prop_assert_eq!(d.count_in_range(lo, hi), want);
        });
    }
}
