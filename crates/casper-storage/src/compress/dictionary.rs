//! Order-preserving dictionary compression.
//!
//! Distinct values are collected into a sorted dictionary; the column
//! stores fixed-width codes (u8/u16/u32 chosen by cardinality). Because the
//! dictionary is sorted, range predicates translate to code-range
//! predicates and scans run directly over the codes — "dictionary
//! compression is supported by Casper as-is" (§6.2).

use super::Codec;
use crate::value::ColumnValue;

/// Code width chosen from the dictionary cardinality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodeWidth {
    /// ≤ 256 distinct values.
    U8,
    /// ≤ 65 536 distinct values.
    U16,
    /// anything larger (up to u32::MAX codes).
    U32,
}

impl CodeWidth {
    fn for_cardinality(n: usize) -> Self {
        if n <= u8::MAX as usize + 1 {
            CodeWidth::U8
        } else if n <= u16::MAX as usize + 1 {
            CodeWidth::U16
        } else {
            CodeWidth::U32
        }
    }

    /// Bytes per stored code.
    pub fn bytes(self) -> usize {
        match self {
            CodeWidth::U8 => 1,
            CodeWidth::U16 => 2,
            CodeWidth::U32 => 4,
        }
    }
}

/// An order-preserving dictionary-encoded column fragment.
#[derive(Debug, Clone)]
pub struct Dictionary<K: ColumnValue> {
    /// Sorted distinct values; index = code.
    dict: Vec<K>,
    /// One code per row (stored widened; `width` gives the modeled size).
    codes: Vec<u32>,
    width: CodeWidth,
}

impl<K: ColumnValue> Dictionary<K> {
    /// Encode a column fragment.
    pub fn encode(values: &[K]) -> Self {
        let mut dict: Vec<K> = values.to_vec();
        dict.sort_unstable();
        dict.dedup();
        let codes = values
            .iter()
            .map(|v| dict.binary_search(v).expect("value in dict") as u32)
            .collect();
        let width = CodeWidth::for_cardinality(dict.len());
        Self { dict, codes, width }
    }

    /// The sorted dictionary.
    pub fn dict(&self) -> &[K] {
        &self.dict
    }

    /// The per-row codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Modeled code width.
    pub fn width(&self) -> CodeWidth {
        self.width
    }

    /// Translate a value to the first code whose value is `>= v` (for
    /// predicate pushdown). Returns `dict.len()` when `v` exceeds all.
    pub fn lower_bound_code(&self, v: K) -> u32 {
        self.dict.partition_point(|&d| d < v) as u32
    }
}

impl<K: ColumnValue> Codec<K> for Dictionary<K> {
    fn decode(&self) -> Vec<K> {
        self.codes.iter().map(|&c| self.dict[c as usize]).collect()
    }

    fn encoded_bytes(&self) -> usize {
        self.dict.len() * K::WIDTH + self.codes.len() * self.width.bytes()
    }

    fn len(&self) -> usize {
        self.codes.len()
    }

    fn count_in_range(&self, lo: K, hi: K) -> u64 {
        // Order-preserving: compare codes, never touching the dictionary
        // values during the scan.
        let lo_c = self.lower_bound_code(lo);
        let hi_c = self.lower_bound_code(hi);
        self.codes
            .iter()
            .filter(|&&c| c >= lo_c && c < hi_c)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let vals: Vec<u64> = vec![5, 3, 5, 5, 9, 3, 1];
        let d = Dictionary::encode(&vals);
        assert_eq!(d.decode(), vals);
        assert_eq!(d.dict(), &[1, 3, 5, 9]);
    }

    #[test]
    fn code_width_scales_with_cardinality() {
        let small: Vec<u64> = (0..10).collect();
        assert_eq!(Dictionary::encode(&small).width(), CodeWidth::U8);
        let medium: Vec<u64> = (0..300).collect();
        assert_eq!(Dictionary::encode(&medium).width(), CodeWidth::U16);
        let large: Vec<u64> = (0..70_000).collect();
        assert_eq!(Dictionary::encode(&large).width(), CodeWidth::U32);
    }

    #[test]
    fn compression_beats_plain_for_low_cardinality() {
        let vals: Vec<u64> = (0..1000).map(|i| (i % 4) as u64).collect();
        let d = Dictionary::encode(&vals);
        // 4 dict entries * 8B + 1000 codes * 1B ≈ 1032 vs 8000 plain.
        assert!(d.encoded_bytes() < 8000 / 4);
    }

    #[test]
    fn count_in_range_matches_plain_scan() {
        let vals: Vec<u64> = vec![10, 20, 30, 20, 40, 10, 50];
        let d = Dictionary::encode(&vals);
        for (lo, hi) in [(0, 100), (15, 35), (20, 21), (60, 70), (30, 10)] {
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            assert_eq!(d.count_in_range(lo, hi), want, "range [{lo},{hi})");
        }
    }

    #[test]
    fn proptest_dictionary_round_trip_and_scan() {
        use proptest::prelude::*;
        proptest!(|(vals in proptest::collection::vec(0u64..500, 0..200),
                    lo in 0u64..600, hi in 0u64..600)| {
            if vals.is_empty() { return Ok(()); }
            let d = Dictionary::encode(&vals);
            prop_assert_eq!(d.decode(), vals.clone());
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            prop_assert_eq!(d.count_in_range(lo, hi), want);
        });
    }
}
