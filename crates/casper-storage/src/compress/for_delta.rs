//! Frame-of-reference (delta) compression.
//!
//! Each fragment stores a base value (its minimum) and per-row offsets
//! packed at the smallest sufficient power-of-two width. This is the codec
//! with the §6.2 *partitioning synergy*: "Casper tends to finely partition
//! areas that attract more queries, thus enabling better delta compression
//! since the value range of small partitions is also small."

use super::Codec;
use crate::value::ColumnValue;

/// Offset width classes (bit-packing rounded to byte-friendly widths, as
//  real engines do for SIMD-able scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetWidth {
    /// Offsets fit in one byte.
    U8,
    /// Offsets fit in two bytes.
    U16,
    /// Offsets fit in four bytes.
    U32,
    /// Full-width offsets (no compression win).
    U64,
}

impl OffsetWidth {
    fn for_span(span: u64) -> Self {
        if span <= u8::MAX as u64 {
            OffsetWidth::U8
        } else if span <= u16::MAX as u64 {
            OffsetWidth::U16
        } else if span <= u32::MAX as u64 {
            OffsetWidth::U32
        } else {
            OffsetWidth::U64
        }
    }

    /// Bytes per stored offset.
    pub fn bytes(self) -> usize {
        match self {
            OffsetWidth::U8 => 1,
            OffsetWidth::U16 => 2,
            OffsetWidth::U32 => 4,
            OffsetWidth::U64 => 8,
        }
    }
}

/// A frame-of-reference encoded fragment.
#[derive(Debug, Clone)]
pub struct ForBlock<K: ColumnValue> {
    base: u64,
    offsets: Vec<u64>,
    width: OffsetWidth,
    _marker: std::marker::PhantomData<K>,
}

impl<K: ColumnValue> ForBlock<K> {
    /// Encode a fragment (empty fragments get a zero base).
    pub fn encode(values: &[K]) -> Self {
        let ord: Vec<u64> = values.iter().map(|v| v.to_ordered_u64()).collect();
        let base = ord.iter().copied().min().unwrap_or(0);
        let span = ord.iter().copied().max().unwrap_or(0) - base;
        let offsets = ord.iter().map(|&v| v - base).collect();
        Self {
            base,
            offsets,
            width: OffsetWidth::for_span(span),
            _marker: std::marker::PhantomData,
        }
    }

    /// Modeled offset width.
    pub fn width(&self) -> OffsetWidth {
        self.width
    }

    /// The frame base (ordered-u64 space).
    pub fn base(&self) -> u64 {
        self.base
    }
}

impl<K: ColumnValue> Codec<K> for ForBlock<K> {
    fn decode(&self) -> Vec<K> {
        self.offsets
            .iter()
            .map(|&o| K::from_ordered_u64(self.base + o))
            .collect()
    }

    fn encoded_bytes(&self) -> usize {
        8 + self.offsets.len() * self.width.bytes()
    }

    fn len(&self) -> usize {
        self.offsets.len()
    }

    fn count_in_range(&self, lo: K, hi: K) -> u64 {
        let lo = lo.to_ordered_u64();
        let hi = hi.to_ordered_u64();
        if hi <= lo {
            return 0;
        }
        // Rebase the predicate once, then scan offsets directly.
        let lo_off = lo.saturating_sub(self.base);
        if hi <= self.base {
            return 0;
        }
        let hi_off = hi - self.base;
        self.offsets
            .iter()
            .filter(|&&o| o >= lo_off && o < hi_off && self.base + o >= lo)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64() {
        let vals: Vec<u64> = vec![1000, 1003, 1001, 1200];
        let b = ForBlock::encode(&vals);
        assert_eq!(b.decode(), vals);
        assert_eq!(b.width(), OffsetWidth::U8);
    }

    #[test]
    fn round_trip_signed() {
        let vals: Vec<i64> = vec![-5, 0, 5, -3];
        let b = ForBlock::encode(&vals);
        assert_eq!(b.decode(), vals);
    }

    #[test]
    fn width_grows_with_span() {
        assert_eq!(ForBlock::encode(&[0u64, 255]).width(), OffsetWidth::U8);
        assert_eq!(ForBlock::encode(&[0u64, 256]).width(), OffsetWidth::U16);
        assert_eq!(ForBlock::encode(&[0u64, 1 << 20]).width(), OffsetWidth::U32);
        assert_eq!(ForBlock::encode(&[0u64, 1 << 40]).width(), OffsetWidth::U64);
    }

    #[test]
    fn narrow_partitions_compress_better() {
        // The §6.2 synergy: the same data split into narrow fragments needs
        // fewer offset bytes than one wide fragment.
        let all: Vec<u64> = (0..4096u64).map(|i| i * 300).collect();
        let whole = ForBlock::encode(&all);
        let split_bytes: usize = all
            .chunks(128)
            .map(|c| ForBlock::encode(c).encoded_bytes())
            .sum();
        assert!(split_bytes < whole.encoded_bytes());
    }

    #[test]
    fn count_in_range_matches_plain() {
        let vals: Vec<u64> = vec![100, 150, 200, 120, 180];
        let b = ForBlock::encode(&vals);
        for (lo, hi) in [(0, 1000), (120, 180), (150, 151), (500, 600), (0, 100)] {
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            assert_eq!(b.count_in_range(lo, hi), want, "[{lo},{hi})");
        }
    }

    #[test]
    fn empty_fragment() {
        let b = ForBlock::<u64>::encode(&[]);
        assert!(b.is_empty());
        assert_eq!(b.decode(), Vec::<u64>::new());
        assert_eq!(b.count_in_range(0, 10), 0);
    }

    #[test]
    fn proptest_for_round_trip() {
        use proptest::prelude::*;
        proptest!(|(vals in proptest::collection::vec(any::<u64>(), 0..100))| {
            let b = ForBlock::encode(&vals);
            prop_assert_eq!(b.decode(), vals);
        });
    }
}
