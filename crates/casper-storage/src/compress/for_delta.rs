//! Frame-of-reference (delta) compression.
//!
//! Each fragment stores a base value (its minimum) and per-row offsets
//! packed at the smallest sufficient power-of-two width. This is the codec
//! with the §6.2 *partitioning synergy*: "Casper tends to finely partition
//! areas that attract more queries, thus enabling better delta compression
//! since the value range of small partitions is also small."
//!
//! Offsets are **physically packed** (`Vec<u8>` / `Vec<u16>` / …), not just
//! modeled: a scan over a `U8` fragment streams one byte per value instead
//! of eight, which is where the paper's "less overall data movement" comes
//! from. The compressed kernels in [`crate::kernels::compressed`] evaluate
//! predicates directly on the packed lanes by rebasing the bounds once
//! (`x ∈ [lo, hi)` ⇔ `offset - (lo - base) < hi - lo` in wrapping
//! arithmetic) — no decode step, ever.

use super::Codec;
use crate::value::ColumnValue;

/// Offset width classes (bit-packing rounded to byte-friendly widths, as
/// real engines do for SIMD-able scans).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetWidth {
    /// Offsets fit in one byte.
    U8,
    /// Offsets fit in two bytes.
    U16,
    /// Offsets fit in four bytes.
    U32,
    /// Full-width offsets (no compression win).
    U64,
}

impl OffsetWidth {
    /// The narrowest width that can represent `span`.
    pub fn for_span(span: u64) -> Self {
        if span <= u8::MAX as u64 {
            OffsetWidth::U8
        } else if span <= u16::MAX as u64 {
            OffsetWidth::U16
        } else if span <= u32::MAX as u64 {
            OffsetWidth::U32
        } else {
            OffsetWidth::U64
        }
    }

    /// Bytes per stored offset.
    pub fn bytes(self) -> usize {
        match self {
            OffsetWidth::U8 => 1,
            OffsetWidth::U16 => 2,
            OffsetWidth::U32 => 4,
            OffsetWidth::U64 => 8,
        }
    }
}

/// Physically packed offset column: the concrete lane the compressed
/// kernels scan. Public so [`crate::kernels::compressed`] can monomorphize
/// its branchless loops per width.
#[derive(Debug, Clone)]
pub enum PackedOffsets {
    /// One byte per offset.
    U8(Vec<u8>),
    /// Two bytes per offset.
    U16(Vec<u16>),
    /// Four bytes per offset.
    U32(Vec<u32>),
    /// Full-width offsets.
    U64(Vec<u64>),
}

impl PackedOffsets {
    fn pack(offsets: impl Iterator<Item = u64>, width: OffsetWidth) -> Self {
        match width {
            OffsetWidth::U8 => PackedOffsets::U8(offsets.map(|o| o as u8).collect()),
            OffsetWidth::U16 => PackedOffsets::U16(offsets.map(|o| o as u16).collect()),
            OffsetWidth::U32 => PackedOffsets::U32(offsets.map(|o| o as u32).collect()),
            OffsetWidth::U64 => PackedOffsets::U64(offsets.collect()),
        }
    }

    /// Number of packed offsets.
    pub fn len(&self) -> usize {
        match self {
            PackedOffsets::U8(v) => v.len(),
            PackedOffsets::U16(v) => v.len(),
            PackedOffsets::U32(v) => v.len(),
            PackedOffsets::U64(v) => v.len(),
        }
    }

    /// Whether no offsets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Width class of the packing.
    pub fn width(&self) -> OffsetWidth {
        match self {
            PackedOffsets::U8(_) => OffsetWidth::U8,
            PackedOffsets::U16(_) => OffsetWidth::U16,
            PackedOffsets::U32(_) => OffsetWidth::U32,
            PackedOffsets::U64(_) => OffsetWidth::U64,
        }
    }

    /// Offset at position `i`, widened.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            PackedOffsets::U8(v) => u64::from(v[i]),
            PackedOffsets::U16(v) => u64::from(v[i]),
            PackedOffsets::U32(v) => u64::from(v[i]),
            PackedOffsets::U64(v) => v[i],
        }
    }
}

/// A frame-of-reference encoded fragment.
#[derive(Debug, Clone)]
pub struct ForBlock<K: ColumnValue> {
    base: u64,
    offsets: PackedOffsets,
    _marker: std::marker::PhantomData<K>,
}

impl<K: ColumnValue> ForBlock<K> {
    /// Encode a fragment (empty fragments get a zero base).
    pub fn encode(values: &[K]) -> Self {
        super::telemetry::note_encode();
        let ord: Vec<u64> = values.iter().map(|v| v.to_ordered_u64()).collect();
        let base = ord.iter().copied().min().unwrap_or(0);
        let span = ord.iter().copied().max().unwrap_or(0) - base;
        let width = OffsetWidth::for_span(span);
        Self {
            base,
            offsets: PackedOffsets::pack(ord.into_iter().map(|v| v - base), width),
            _marker: std::marker::PhantomData,
        }
    }

    /// Reassemble a fragment from its persisted raw parts *without*
    /// re-encoding (snapshot restore). The packed lane is taken verbatim;
    /// callers are responsible for having validated any surrounding
    /// framing/checksums.
    pub fn from_raw(base: u64, offsets: PackedOffsets) -> Self {
        Self {
            base,
            offsets,
            _marker: std::marker::PhantomData,
        }
    }

    /// Packed offset width.
    pub fn width(&self) -> OffsetWidth {
        self.offsets.width()
    }

    /// The frame base (ordered-u64 space).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The packed offset lane (scanned directly by the compressed kernels).
    pub fn offsets(&self) -> &PackedOffsets {
        &self.offsets
    }

    /// Value at encoded position `i` (same order as the input slice).
    #[inline]
    pub fn get(&self, i: usize) -> K {
        K::from_ordered_u64(self.base + self.offsets.get(i))
    }
}

impl<K: ColumnValue> Codec<K> for ForBlock<K> {
    fn decode(&self) -> Vec<K> {
        super::telemetry::note_decode();
        (0..self.offsets.len())
            .map(|i| K::from_ordered_u64(self.base + self.offsets.get(i)))
            .collect()
    }

    fn encoded_bytes(&self) -> usize {
        8 + self.offsets.len() * self.width().bytes()
    }

    fn len(&self) -> usize {
        self.offsets.len()
    }

    fn count_in_range(&self, lo: K, hi: K) -> u64 {
        crate::kernels::compressed::for_count_range(self, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_u64() {
        let vals: Vec<u64> = vec![1000, 1003, 1001, 1200];
        let b = ForBlock::encode(&vals);
        assert_eq!(b.decode(), vals);
        assert_eq!(b.width(), OffsetWidth::U8);
    }

    #[test]
    fn round_trip_signed() {
        let vals: Vec<i64> = vec![-5, 0, 5, -3];
        let b = ForBlock::encode(&vals);
        assert_eq!(b.decode(), vals);
    }

    #[test]
    fn width_grows_with_span() {
        assert_eq!(ForBlock::encode(&[0u64, 255]).width(), OffsetWidth::U8);
        assert_eq!(ForBlock::encode(&[0u64, 256]).width(), OffsetWidth::U16);
        assert_eq!(ForBlock::encode(&[0u64, 1 << 20]).width(), OffsetWidth::U32);
        assert_eq!(ForBlock::encode(&[0u64, 1 << 40]).width(), OffsetWidth::U64);
    }

    #[test]
    fn offsets_are_physically_packed() {
        let b = ForBlock::encode(&[10u64, 13, 11]);
        assert!(matches!(b.offsets(), PackedOffsets::U8(v) if v == &[0, 3, 1]));
        assert_eq!(b.get(1), 13);
    }

    #[test]
    fn narrow_partitions_compress_better() {
        // The §6.2 synergy: the same data split into narrow fragments needs
        // fewer offset bytes than one wide fragment.
        let all: Vec<u64> = (0..4096u64).map(|i| i * 300).collect();
        let whole = ForBlock::encode(&all);
        let split_bytes: usize = all
            .chunks(128)
            .map(|c| ForBlock::encode(c).encoded_bytes())
            .sum();
        assert!(split_bytes < whole.encoded_bytes());
    }

    #[test]
    fn count_in_range_matches_plain() {
        let vals: Vec<u64> = vec![100, 150, 200, 120, 180];
        let b = ForBlock::encode(&vals);
        for (lo, hi) in [(0, 1000), (120, 180), (150, 151), (500, 600), (0, 100)] {
            let want = vals.iter().filter(|&&v| lo <= v && v < hi).count() as u64;
            assert_eq!(b.count_in_range(lo, hi), want, "[{lo},{hi})");
        }
    }

    #[test]
    fn empty_fragment() {
        let b = ForBlock::<u64>::encode(&[]);
        assert!(b.is_empty());
        assert_eq!(b.decode(), Vec::<u64>::new());
        assert_eq!(b.count_in_range(0, 10), 0);
    }

    #[test]
    fn proptest_for_round_trip() {
        use proptest::prelude::*;
        proptest!(|(vals in proptest::collection::vec(any::<u64>(), 0..100))| {
            let b = ForBlock::encode(&vals);
            prop_assert_eq!(b.decode(), vals);
        });
    }
}
