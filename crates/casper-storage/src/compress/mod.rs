//! Columnar compression codecs (§6.2).
//!
//! Casper natively supports the two schemes most common in modern
//! column stores — **dictionary** and **frame-of-reference** (delta)
//! compression — and we also implement **RLE** to reproduce the paper's
//! discussion of why it is usually *not* preferred for updatable columns
//! (it requires sorted data and a decode/re-encode cycle on every update).
//!
//! The §6.2 synergy is exercised by [`for_delta::ForBlock`]: finer
//! partitions span narrower value ranges, so their frame-of-reference
//! deltas need fewer bits — "the more we read a partition the more
//! compressed it is".
//!
//! Scans over encoded fragments never decode: the codec-aware kernels live
//! in [`crate::kernels::compressed`] and a per-thread [`telemetry`] counter
//! lets tests *prove* the no-decode property. Chunks opt partitions into a
//! [`StorageMode`] via [`crate::PartitionedChunk::compress_partition`].

pub mod chunk_codec;
pub mod dictionary;
pub mod for_delta;
pub mod rle;

pub use chunk_codec::CompressedChunk;
pub use dictionary::Dictionary;
pub use for_delta::ForBlock;
pub use rle::Rle;

/// A self-describing encoded column fragment.
pub trait Codec<K> {
    /// Decode back to plain values.
    fn decode(&self) -> Vec<K>;
    /// Size of the encoded representation in bytes (payload only, excluding
    /// Rust struct overhead — the quantity compression ratios are computed
    /// from).
    fn encoded_bytes(&self) -> usize;
    /// Number of encoded values.
    fn len(&self) -> usize;
    /// Whether the fragment is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Count encoded values in `[lo, hi)` *without* decompressing — the
    /// predicate-pushdown scan analytical engines rely on.
    ///
    /// Contract: a degenerate range (`lo >= hi`) returns 0 for **every**
    /// codec (pinned by `degenerate_range_contract` below).
    fn count_in_range(&self, lo: K, hi: K) -> u64;
}

/// Physical storage mode of one chunk partition: plain slots, or one of the
/// three §6.2 codecs. Chosen per partition by the engine's optimizer —
/// cold, read-heavy partitions compress; hot write targets stay plain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Uncompressed fixed-width slots (the write-friendly default).
    #[default]
    Plain,
    /// Frame-of-reference packed offsets (the §6.2 synergy codec).
    For,
    /// Order-preserving dictionary codes.
    Dict,
    /// Run-length encoded (sorted) — read-only until a decode-on-write.
    Rle,
}

impl StorageMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StorageMode::Plain => "plain",
            StorageMode::For => "for",
            StorageMode::Dict => "dict",
            StorageMode::Rle => "rle",
        }
    }
}

/// Per-thread decode/encode instrumentation.
///
/// Every [`Codec::decode`] call bumps a thread-local counter, which lets
/// tests assert that a compressed read path ran end-to-end *without*
/// decompression (the acceptance criterion of the compressed-scan kernels).
/// Every codec *encode* bumps a second counter, which lets the durability
/// tests assert that restoring a snapshot re-materializes fragments from
/// their serialized bytes with **zero re-encodes** (the recovery-path
/// acceptance criterion). Thread-local (not global) so parallel test
/// threads cannot pollute each other's measurements.
pub mod telemetry {
    use std::cell::Cell;

    thread_local! {
        static DECODES: Cell<u64> = const { Cell::new(0) };
        static ENCODES: Cell<u64> = const { Cell::new(0) };
    }

    /// Record one decode (called by the codecs).
    pub(crate) fn note_decode() {
        DECODES.with(|c| c.set(c.get() + 1));
    }

    /// Number of codec decodes performed by the current thread.
    pub fn decode_count() -> u64 {
        DECODES.with(Cell::get)
    }

    /// Record one encode (called by the codecs; raw-parts reconstruction
    /// deliberately does *not* count).
    pub(crate) fn note_encode() {
        ENCODES.with(|c| c.set(c.get() + 1));
    }

    /// Number of codec encodes performed by the current thread.
    pub fn encode_count() -> u64 {
        ENCODES.with(Cell::get)
    }
}

/// Compression ratio of `plain_bytes` against an encoded size.
pub fn compression_ratio(plain_bytes: usize, encoded_bytes: usize) -> f64 {
    if encoded_bytes == 0 {
        return f64::INFINITY;
    }
    plain_bytes as f64 / encoded_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        assert!((compression_ratio(100, 25) - 4.0).abs() < 1e-12);
        assert!(compression_ratio(8, 0).is_infinite());
    }

    /// Satellite contract: `lo >= hi` returns 0 for all three codecs, on
    /// equal, inverted, and extreme bounds alike.
    #[test]
    fn degenerate_range_contract() {
        let vals: Vec<u64> = vec![5, 5, 7, 9, 9, 9, 12];
        let codecs: Vec<Box<dyn Codec<u64>>> = vec![
            Box::new(ForBlock::encode(&vals)),
            Box::new(Dictionary::encode(&vals)),
            Box::new(Rle::encode(&vals)),
        ];
        for c in &codecs {
            for (lo, hi) in [
                (7u64, 7u64),         // equal, value present
                (6, 6),               // equal, value absent
                (9, 5),               // inverted inside the domain
                (u64::MAX, 0),        // inverted across the full domain
                (u64::MAX, u64::MAX), // equal at the top
                (0, 0),               // equal at the bottom
                (12, 5),              // inverted touching the max value
            ] {
                assert_eq!(c.count_in_range(lo, hi), 0, "[{lo},{hi})");
            }
            // Sanity: non-degenerate ranges still count.
            assert_eq!(c.count_in_range(5, 10), 6);
            assert_eq!(c.count_in_range(0, u64::MAX), 7);
        }
    }

    #[test]
    fn degenerate_range_contract_signed() {
        let vals: Vec<i64> = vec![-9, -9, -2, 0, 4];
        let for_b = ForBlock::encode(&vals);
        let dict = Dictionary::encode(&vals);
        let rle = Rle::encode(&vals);
        for (lo, hi) in [(0i64, 0i64), (4, -9), (i64::MAX, i64::MIN), (-2, -2)] {
            assert_eq!(for_b.count_in_range(lo, hi), 0);
            assert_eq!(dict.count_in_range(lo, hi), 0);
            assert_eq!(rle.count_in_range(lo, hi), 0);
        }
        assert_eq!(for_b.count_in_range(-9, 1), 4);
        assert_eq!(dict.count_in_range(-9, 1), 4);
        assert_eq!(rle.count_in_range(-9, 1), 4);
    }

    #[test]
    fn telemetry_counts_decodes() {
        let before = telemetry::decode_count();
        let b = ForBlock::encode(&[1u64, 2, 3]);
        let _ = b.count_in_range(0, 10); // scans never decode
        assert_eq!(telemetry::decode_count(), before);
        let _ = b.decode();
        assert_eq!(telemetry::decode_count(), before + 1);
    }
}
