//! Columnar compression codecs (§6.2).
//!
//! Casper natively supports the two schemes most common in modern
//! column stores — **dictionary** and **frame-of-reference** (delta)
//! compression — and we also implement **RLE** to reproduce the paper's
//! discussion of why it is usually *not* preferred for updatable columns
//! (it requires sorted data and a decode/re-encode cycle on every update).
//!
//! The §6.2 synergy is exercised by [`for_delta::ForBlock`]: finer
//! partitions span narrower value ranges, so their frame-of-reference
//! deltas need fewer bits — "the more we read a partition the more
//! compressed it is".

pub mod chunk_codec;
pub mod dictionary;
pub mod for_delta;
pub mod rle;

pub use chunk_codec::CompressedChunk;
pub use dictionary::Dictionary;
pub use for_delta::ForBlock;
pub use rle::Rle;

/// A self-describing encoded column fragment.
pub trait Codec<K> {
    /// Decode back to plain values.
    fn decode(&self) -> Vec<K>;
    /// Size of the encoded representation in bytes (payload only, excluding
    /// Rust struct overhead — the quantity compression ratios are computed
    /// from).
    fn encoded_bytes(&self) -> usize;
    /// Number of encoded values.
    fn len(&self) -> usize;
    /// Whether the fragment is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Count encoded values in `[lo, hi)` *without* decompressing — the
    /// predicate-pushdown scan analytical engines rely on.
    fn count_in_range(&self, lo: K, hi: K) -> u64;
}

/// Compression ratio of `plain_bytes` against an encoded size.
pub fn compression_ratio(plain_bytes: usize, encoded_bytes: usize) -> f64 {
    if encoded_bytes == 0 {
        return f64::INFINITY;
    }
    plain_bytes as f64 / encoded_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_basics() {
        assert!((compression_ratio(100, 25) - 4.0).abs() < 1e-12);
        assert!(compression_ratio(8, 0).is_infinite());
    }
}
