//! Portable fallback kernels: safe, branchless chunked-scalar loops.
//!
//! These are the reference semantics for the whole dispatch layer — every
//! arch backend is property-tested bit-exact against them — and the code
//! the [`super::SimdLevel::Scalar`] level actually runs. The loops are
//! written in the accumulate-a-bool style the auto-vectorizer handles well,
//! so on x86-64 the fallback still runs at SSE2 speed; on non-x86 targets
//! it is the only path.

use super::SimdElem;

/// Count lane entries equal to `target`.
pub fn count_eq<T: SimdElem>(lane: &[T], target: T) -> u64 {
    let mut acc = 0u64;
    for &x in lane {
        acc += u64::from(x == target);
    }
    acc
}

/// Count lane entries in `[lo, lo + span)` via the wrapped compare.
pub fn count_window<T: SimdElem>(lane: &[T], lo: T, span: T) -> u64 {
    let mut acc = 0u64;
    for &x in lane {
        acc += u64::from(x.wsub(lo) < span);
    }
    acc
}

/// Evaluate the window into bitmap words (bit `i` of word `w` ⇔
/// `lane[w * 64 + i]` qualifies; zero-padded final word). Returns the
/// match count.
pub fn bitmap_window<T: SimdElem>(lane: &[T], lo: T, span: T, out: &mut Vec<u64>) -> u64 {
    let mut matched = 0u64;
    let mut chunks = lane.chunks_exact(64);
    for chunk in &mut chunks {
        let mut word = 0u64;
        for (bit, &x) in chunk.iter().enumerate() {
            word |= u64::from(x.wsub(lo) < span) << bit;
        }
        matched += u64::from(word.count_ones());
        out.push(word);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = 0u64;
        for (bit, &x) in rem.iter().enumerate() {
            word |= u64::from(x.wsub(lo) < span) << bit;
        }
        matched += u64::from(word.count_ones());
        out.push(word);
    }
    matched
}

/// Fused window filter + payload aggregation: `(matched, sum)`.
pub fn sum_window<T: SimdElem>(keys: &[T], payload: &[u32], lo: T, span: T) -> (u64, u64) {
    let mut matched = 0u64;
    let mut acc = 0u64;
    for (&x, &p) in keys.iter().zip(payload) {
        let m = u64::from(x.wsub(lo) < span);
        matched += m;
        acc += m * u64::from(p);
    }
    (matched, acc)
}

/// Min/max of `x ^ flip` over a non-empty lane.
pub fn min_max_flipped<T: SimdElem>(lane: &[T], flip: T) -> (T, T) {
    debug_assert!(!lane.is_empty());
    let f = flip.widen();
    let mut lo = lane[0].widen() ^ f;
    let mut hi = lo;
    for &x in &lane[1..] {
        let v = x.widen() ^ f;
        lo = if v < lo { v } else { lo };
        hi = if v > hi { v } else { hi };
    }
    (T::narrow(lo), T::narrow(hi))
}

/// Append `base + i` for every `i` with `lane[i] == target`; returns the
/// match count. Reference twin of the AVX-512 compress-store kernel —
/// positions are emitted in ascending order, exactly one per match.
pub fn select_eq_positions<T: SimdElem>(
    lane: &[T],
    target: T,
    base: u32,
    out: &mut Vec<u32>,
) -> u64 {
    let mut matched = 0u64;
    for (i, &x) in lane.iter().enumerate() {
        if x == target {
            out.push(base + i as u32);
            matched += 1;
        }
    }
    matched
}

/// Widening `u32 → u64` sum.
pub fn sum_u32(payload: &[u32]) -> u64 {
    let mut acc = 0u64;
    for &p in payload {
        acc += u64::from(p);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_half_open_and_wrap_safe() {
        let lane: Vec<u8> = vec![0, 9, 10, 11, 250, 255];
        // [10, 12): matches 10, 11.
        assert_eq!(count_window(&lane, 10u8, 2), 2);
        // [250, 256) expressed as lo=250, span=6: matches 250, 255.
        assert_eq!(count_window(&lane, 250u8, 6), 2);
        // Values below lo wrap to huge differences and never match.
        assert_eq!(count_window(&lane, 200u8, 10), 0);
    }

    #[test]
    fn min_max_flip_reorders_signed_bit_patterns() {
        // Raw bit patterns of i8 [-2, 3] are [0xFE, 0x03]; flipping the
        // sign bit makes the unsigned comparator order them correctly.
        let lane: Vec<u8> = vec![0xFE, 0x03];
        let (lo, hi) = min_max_flipped(&lane, 0x80u8);
        // Results stay in the flipped (order-normalized) domain.
        assert_eq!((lo, hi), (0xFE ^ 0x80, 0x03 ^ 0x80));
    }

    #[test]
    fn bitmap_words_pad_the_tail() {
        let lane: Vec<u16> = (0..70).collect();
        let mut out = Vec::new();
        let m = bitmap_window(&lane, 0u16, 70, &mut out);
        assert_eq!(m, 70);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], u64::MAX);
        assert_eq!(out[1], (1 << 6) - 1);
    }
}
