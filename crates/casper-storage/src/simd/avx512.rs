//! AVX-512 backend: 512-bit compares producing `__mmask` registers.
//!
//! Where AVX2 needs compare → movemask → shift/or per vector, AVX-512's
//! mask-register compares hand back the bitmap bits directly — and they
//! come in *unsigned* flavours, so the window test `x - lo <u span` is a
//! single `vpsubb` + `vpcmpub` with no sign-bias trick. Lanes per 512-bit
//! vector: 64×u8 (one compare = one whole bitmap word), 32×u16, 16×u32,
//! 8×u64.
//!
//! Requires `avx512f` (32/64-bit element ops) and `avx512bw` (8/16-bit
//! element ops); the dispatcher treats the pair as one level since every
//! width must be available.
//!
//! # Safety
//!
//! Every function requires the `avx512f,avx512bw` target features; the
//! dispatcher in [`super`] only routes here after
//! `is_x86_feature_detected!` proved both.

#![allow(unsafe_op_in_unsafe_fn)]

use super::arch_kernels;
use std::arch::x86_64::*;

/// Sum 64 consecutive `u32`s starting at `ptr`, widened to `u64`.
///
/// # Safety
/// Requires AVX-512F and 64 readable `u32`s at `ptr`.
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
pub unsafe fn sum64_u32(ptr: *const u32) -> u64 {
    let mut acc = _mm512_setzero_si512();
    for i in 0..4 {
        let v = _mm512_loadu_si512(ptr.add(i * 16) as *const _);
        let lo = _mm512_cvtepu32_epi64(_mm512_castsi512_si256(v));
        let hi = _mm512_cvtepu32_epi64(_mm512_extracti64x4_epi64(v, 1));
        acc = _mm512_add_epi64(acc, _mm512_add_epi64(lo, hi));
    }
    _mm512_reduce_add_epi64(acc) as u64
}

/// Widening sum of a whole `u32` slice.
///
/// # Safety
/// Requires AVX-512F/BW.
#[target_feature(enable = "avx512f,avx512bw")]
pub unsafe fn sum_u32(payload: &[u32]) -> u64 {
    let mut acc = 0u64;
    let mut chunks = payload.chunks_exact(64);
    for c in &mut chunks {
        acc += sum64_u32(c.as_ptr());
    }
    for &p in chunks.remainder() {
        acc += u64::from(p);
    }
    acc
}

/// Emit the positions of every set bit of `word` as `base + bit`, via
/// `vpcompressd`: four 16-lane index vectors are compress-stored under the
/// word's mask quarters, so a dense match word costs four stores instead of
/// 64 scalar pushes and a sparse word pays no per-bit branch at all.
///
/// # Safety
/// Requires AVX-512F; `out` must have at least 64 spare slots of capacity
/// past its current length (the caller reserves).
#[inline]
#[target_feature(enable = "avx512f,avx512bw")]
unsafe fn compress_positions_word(word: u64, base: u32, out: &mut Vec<u32>) {
    const IOTA: [u32; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15];
    debug_assert!(out.capacity() - out.len() >= 64);
    let iota = _mm512_loadu_si512(IOTA.as_ptr() as *const _);
    let basev = _mm512_set1_epi32(base as i32);
    let start = out.len();
    let mut emitted = 0usize;
    for q in 0..4u32 {
        let mask = ((word >> (q * 16)) & 0xFFFF) as u16;
        if mask == 0 {
            continue;
        }
        let idx = _mm512_add_epi32(
            basev,
            _mm512_add_epi32(iota, _mm512_set1_epi32((q * 16) as i32)),
        );
        _mm512_mask_compressstoreu_epi32(
            out.as_mut_ptr().add(start + emitted) as *mut _,
            mask,
            idx,
        );
        emitted += mask.count_ones() as usize;
    }
    out.set_len(start + emitted);
}

/// Generate the compress-store equality-select kernel for one width: the
/// width module's `eq_word` yields a 64-bit match mask per block, and
/// [`compress_positions_word`] turns set bits into positions without a
/// per-bit branch.
macro_rules! avx512_select_eq {
    ($t:ty) => {
        /// Append `base + i` for every `i` with `lane[i] == target`;
        /// returns the match count. Bit-exact against
        /// [`crate::simd::portable::select_eq_positions`].
        ///
        /// # Safety
        /// Requires AVX-512F/BW.
        #[target_feature(enable = "avx512f,avx512bw")]
        pub unsafe fn select_eq_positions(
            lane: &[$t],
            target: $t,
            base: u32,
            out: &mut Vec<u32>,
        ) -> u64 {
            let mut matched = 0u64;
            let mut chunks = lane.chunks_exact(64);
            let mut block = 0u32;
            for c in &mut chunks {
                let word = eq_word(c.as_ptr(), target);
                if word != 0 {
                    matched += u64::from(word.count_ones());
                    out.reserve(64);
                    super::compress_positions_word(word, base + block * 64, out);
                }
                block += 1;
            }
            for (i, &x) in chunks.remainder().iter().enumerate() {
                if x == target {
                    out.push(base + block * 64 + i as u32);
                    matched += 1;
                }
            }
            matched
        }
    };
}

/// Generate the min/max kernel for one width from its `epu` intrinsics.
macro_rules! avx512_min_max {
    ($t:ty, $lanes:expr, set1 = $set1:ident, min = $min:ident, max = $max:ident) => {
        /// Min/max of `x ^ flip` over a non-empty lane.
        ///
        /// # Safety
        /// Requires AVX-512F/BW; `lane` must be non-empty.
        #[target_feature(enable = "avx512f,avx512bw")]
        pub unsafe fn min_max_flipped(lane: &[$t], flip: $t) -> ($t, $t) {
            let flipv = $set1(flip as _);
            let mut vmin = $set1(<$t>::MAX as _);
            let mut vmax = _mm512_setzero_si512();
            let mut chunks = lane.chunks_exact($lanes);
            for c in &mut chunks {
                let x = _mm512_xor_si512(_mm512_loadu_si512(c.as_ptr() as *const _), flipv);
                vmin = $min(vmin, x);
                vmax = $max(vmax, x);
            }
            let mut mins = [<$t>::MAX; $lanes];
            let mut maxs = [0 as $t; $lanes];
            _mm512_storeu_si512(mins.as_mut_ptr() as *mut _, vmin);
            _mm512_storeu_si512(maxs.as_mut_ptr() as *mut _, vmax);
            let mut lo = <$t>::MAX;
            let mut hi = 0 as $t;
            for i in 0..$lanes {
                lo = lo.min(mins[i]);
                hi = hi.max(maxs[i]);
            }
            for &x in chunks.remainder() {
                let v = x ^ flip;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (lo, hi)
        }
    };
}

/// u8 lanes: one 512-bit compare yields a full 64-bit bitmap word.
pub mod w8 {
    use super::*;

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn window_word(ptr: *const u8, lo: u8, span: u8) -> u64 {
        let lov = _mm512_set1_epi8(lo as i8);
        let spanv = _mm512_set1_epi8(span as i8);
        let x = _mm512_loadu_si512(ptr as *const _);
        _mm512_cmplt_epu8_mask(_mm512_sub_epi8(x, lov), spanv)
    }

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn eq_word(ptr: *const u8, target: u8) -> u64 {
        let tv = _mm512_set1_epi8(target as i8);
        _mm512_cmpeq_epi8_mask(_mm512_loadu_si512(ptr as *const _), tv)
    }

    avx512_min_max!(
        u8,
        64,
        set1 = _mm512_set1_epi8,
        min = _mm512_min_epu8,
        max = _mm512_max_epu8
    );
    avx512_select_eq!(u8);
    arch_kernels!("avx512f,avx512bw", u8);
}

/// u16 lanes: 32 per vector, two compares per bitmap word.
pub mod w16 {
    use super::*;

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn window_word(ptr: *const u16, lo: u16, span: u16) -> u64 {
        let lov = _mm512_set1_epi16(lo as i16);
        let spanv = _mm512_set1_epi16(span as i16);
        let a = _mm512_loadu_si512(ptr as *const _);
        let b = _mm512_loadu_si512(ptr.add(32) as *const _);
        let ma = _mm512_cmplt_epu16_mask(_mm512_sub_epi16(a, lov), spanv);
        let mb = _mm512_cmplt_epu16_mask(_mm512_sub_epi16(b, lov), spanv);
        u64::from(ma) | (u64::from(mb) << 32)
    }

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn eq_word(ptr: *const u16, target: u16) -> u64 {
        let tv = _mm512_set1_epi16(target as i16);
        let ma = _mm512_cmpeq_epi16_mask(_mm512_loadu_si512(ptr as *const _), tv);
        let mb = _mm512_cmpeq_epi16_mask(_mm512_loadu_si512(ptr.add(32) as *const _), tv);
        u64::from(ma) | (u64::from(mb) << 32)
    }

    avx512_min_max!(
        u16,
        32,
        set1 = _mm512_set1_epi16,
        min = _mm512_min_epu16,
        max = _mm512_max_epu16
    );
    avx512_select_eq!(u16);
    arch_kernels!("avx512f,avx512bw", u16);
}

/// u32 lanes: 16 per vector, four compares per bitmap word.
pub mod w32 {
    use super::*;

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn window_word(ptr: *const u32, lo: u32, span: u32) -> u64 {
        let lov = _mm512_set1_epi32(lo as i32);
        let spanv = _mm512_set1_epi32(span as i32);
        let mut word = 0u64;
        for i in 0..4 {
            let x = _mm512_loadu_si512(ptr.add(i * 16) as *const _);
            let m = _mm512_cmplt_epu32_mask(_mm512_sub_epi32(x, lov), spanv);
            word |= u64::from(m) << (i * 16);
        }
        word
    }

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn eq_word(ptr: *const u32, target: u32) -> u64 {
        let tv = _mm512_set1_epi32(target as i32);
        let mut word = 0u64;
        for i in 0..4 {
            let x = _mm512_loadu_si512(ptr.add(i * 16) as *const _);
            word |= u64::from(_mm512_cmpeq_epi32_mask(x, tv)) << (i * 16);
        }
        word
    }

    avx512_min_max!(
        u32,
        16,
        set1 = _mm512_set1_epi32,
        min = _mm512_min_epu32,
        max = _mm512_max_epu32
    );
    avx512_select_eq!(u32);
    arch_kernels!("avx512f,avx512bw", u32);
}

/// u64 lanes: 8 per vector, eight compares per bitmap word.
pub mod w64 {
    use super::*;

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn window_word(ptr: *const u64, lo: u64, span: u64) -> u64 {
        let lov = _mm512_set1_epi64(lo as i64);
        let spanv = _mm512_set1_epi64(span as i64);
        let mut word = 0u64;
        for i in 0..8 {
            let x = _mm512_loadu_si512(ptr.add(i * 8) as *const _);
            let m = _mm512_cmplt_epu64_mask(_mm512_sub_epi64(x, lov), spanv);
            word |= u64::from(m) << (i * 8);
        }
        word
    }

    #[inline]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn eq_word(ptr: *const u64, target: u64) -> u64 {
        let tv = _mm512_set1_epi64(target as i64);
        let mut word = 0u64;
        for i in 0..8 {
            let x = _mm512_loadu_si512(ptr.add(i * 8) as *const _);
            word |= u64::from(_mm512_cmpeq_epi64_mask(x, tv)) << (i * 8);
        }
        word
    }

    /// Min/max of `x ^ flip` over a non-empty lane (AVX-512F has native
    /// `epu64` min/max, unlike AVX2).
    ///
    /// # Safety
    /// Requires AVX-512F/BW; `lane` must be non-empty.
    #[target_feature(enable = "avx512f,avx512bw")]
    pub unsafe fn min_max_flipped(lane: &[u64], flip: u64) -> (u64, u64) {
        let flipv = _mm512_set1_epi64(flip as i64);
        let mut vmin = _mm512_set1_epi64(-1i64);
        let mut vmax = _mm512_setzero_si512();
        let mut chunks = lane.chunks_exact(8);
        for c in &mut chunks {
            let x = _mm512_xor_si512(_mm512_loadu_si512(c.as_ptr() as *const _), flipv);
            vmin = _mm512_min_epu64(vmin, x);
            vmax = _mm512_max_epu64(vmax, x);
        }
        let mut mins = [u64::MAX; 8];
        let mut maxs = [0u64; 8];
        _mm512_storeu_si512(mins.as_mut_ptr() as *mut _, vmin);
        _mm512_storeu_si512(maxs.as_mut_ptr() as *mut _, vmax);
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for i in 0..8 {
            lo = lo.min(mins[i]);
            hi = hi.max(maxs[i]);
        }
        for &x in chunks.remainder() {
            let v = x ^ flip;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    avx512_select_eq!(u64);
    arch_kernels!("avx512f,avx512bw", u64);
}
