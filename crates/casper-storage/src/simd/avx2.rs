//! AVX2 backend: 256-bit compares + `movemask` word packing.
//!
//! Every kernel is built from one per-width primitive — `window_word` /
//! `eq_word`, which evaluate a predicate over **exactly 64 consecutive
//! elements** and return the 64-bit match bitmap (bit `i` ⇔ element `i`
//! qualifies) — plus the shared loop shapes in
//! [`super::arch_kernels`]. Packing strategy per width:
//!
//! * `u8` — 32 lanes/vector; `movemask_epi8` yields 32 element bits, two
//!   vectors per word.
//! * `u16` — 16 lanes/vector; pairs of compare results are saturating-packed
//!   to bytes (`packs_epi16` + a `permute4x64` to undo the 128-bit lane
//!   interleave) so one `movemask_epi8` covers 32 elements.
//! * `u32` — 8 lanes/vector via `movemask_ps`.
//! * `u64` — 4 lanes/vector via `movemask_pd`.
//!
//! AVX2 has no unsigned compares, so the window test `x - lo <u span` is
//! evaluated as `(x - lo) ^ 0x80… <s span ^ 0x80…` (flip the sign bit of
//! both sides, compare signed) — the classic bias trick.
//!
//! # Safety
//!
//! Every function in this module requires the `avx2` target feature; the
//! dispatcher in [`super`] only routes here after
//! `is_x86_feature_detected!("avx2")` proved it.

#![allow(unsafe_op_in_unsafe_fn)]

use super::arch_kernels;
use std::arch::x86_64::*;

/// Sum 64 consecutive `u32`s starting at `ptr`, widened to `u64`.
///
/// # Safety
/// Requires AVX2 and 64 readable `u32`s at `ptr`.
#[inline]
#[target_feature(enable = "avx2")]
pub unsafe fn sum64_u32(ptr: *const u32) -> u64 {
    let mut acc = _mm256_setzero_si256();
    for i in 0..8 {
        let v = _mm256_loadu_si256(ptr.add(i * 8) as *const __m256i);
        let lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(v));
        let hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256(v, 1));
        acc = _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi));
    }
    reduce_add_u64(acc)
}

/// Widening sum of a whole `u32` slice.
///
/// # Safety
/// Requires AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn sum_u32(payload: &[u32]) -> u64 {
    let mut acc = 0u64;
    let mut chunks = payload.chunks_exact(64);
    for c in &mut chunks {
        acc += sum64_u32(c.as_ptr());
    }
    for &p in chunks.remainder() {
        acc += u64::from(p);
    }
    acc
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn reduce_add_u64(v: __m256i) -> u64 {
    let mut tmp = [0u64; 4];
    _mm256_storeu_si256(tmp.as_mut_ptr() as *mut __m256i, v);
    tmp[0]
        .wrapping_add(tmp[1])
        .wrapping_add(tmp[2])
        .wrapping_add(tmp[3])
}

/// Generate the min/max kernel for one width from its `epu` intrinsics
/// (mirrors `avx512::avx512_min_max`; AVX2 lacks `epu64` min/max, so the
/// u64 variant stays hand-written in [`w64`]).
macro_rules! avx2_min_max {
    ($t:ty, $lanes:expr, set1 = $set1:ident, min = $min:ident, max = $max:ident) => {
        /// Min/max of `x ^ flip` over a non-empty lane.
        ///
        /// # Safety
        /// Requires AVX2; `lane` must be non-empty.
        #[target_feature(enable = "avx2")]
        pub unsafe fn min_max_flipped(lane: &[$t], flip: $t) -> ($t, $t) {
            let flipv = $set1(flip as _);
            let mut vmin = $set1(<$t>::MAX as _);
            let mut vmax = _mm256_setzero_si256();
            let mut chunks = lane.chunks_exact($lanes);
            for c in &mut chunks {
                let x = _mm256_xor_si256(_mm256_loadu_si256(c.as_ptr() as *const __m256i), flipv);
                vmin = $min(vmin, x);
                vmax = $max(vmax, x);
            }
            let mut mins = [<$t>::MAX; $lanes];
            let mut maxs = [0 as $t; $lanes];
            _mm256_storeu_si256(mins.as_mut_ptr() as *mut __m256i, vmin);
            _mm256_storeu_si256(maxs.as_mut_ptr() as *mut __m256i, vmax);
            let mut lo = <$t>::MAX;
            let mut hi = 0 as $t;
            for i in 0..$lanes {
                lo = lo.min(mins[i]);
                hi = hi.max(maxs[i]);
            }
            for &x in chunks.remainder() {
                let v = x ^ flip;
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (lo, hi)
        }
    };
}

/// u8 lanes: 32 per vector, two vectors per bitmap word.
pub mod w8 {
    use super::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn window_word(ptr: *const u8, lo: u8, span: u8) -> u64 {
        let lov = _mm256_set1_epi8(lo as i8);
        let bias = _mm256_set1_epi8(i8::MIN);
        let spanb = _mm256_xor_si256(_mm256_set1_epi8(span as i8), bias);
        let mut word = 0u64;
        for half in 0..2 {
            let x = _mm256_loadu_si256(ptr.add(half * 32) as *const __m256i);
            let d = _mm256_xor_si256(_mm256_sub_epi8(x, lov), bias);
            let m = _mm256_movemask_epi8(_mm256_cmpgt_epi8(spanb, d)) as u32;
            word |= u64::from(m) << (half * 32);
        }
        word
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn eq_word(ptr: *const u8, target: u8) -> u64 {
        let tv = _mm256_set1_epi8(target as i8);
        let mut word = 0u64;
        for half in 0..2 {
            let x = _mm256_loadu_si256(ptr.add(half * 32) as *const __m256i);
            let m = _mm256_movemask_epi8(_mm256_cmpeq_epi8(x, tv)) as u32;
            word |= u64::from(m) << (half * 32);
        }
        word
    }

    avx2_min_max!(
        u8,
        32,
        set1 = _mm256_set1_epi8,
        min = _mm256_min_epu8,
        max = _mm256_max_epu8
    );
    arch_kernels!("avx2", u8);
}

/// u16 lanes: 16 per vector, compare pairs packed to one 32-bit mask.
pub mod w16 {
    use super::*;

    /// Pack two 16-bit compare results (lanes of `0x0000`/`0xFFFF`) into a
    /// 32-bit element mask: saturating-pack to bytes, fix the 128-bit lane
    /// interleave, movemask.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pair_mask(c0: __m256i, c1: __m256i) -> u32 {
        let packed = _mm256_packs_epi16(c0, c1);
        let fixed = _mm256_permute4x64_epi64(packed, 0b11_01_10_00);
        _mm256_movemask_epi8(fixed) as u32
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn window_cmp(x: __m256i, lov: __m256i, spanb: __m256i, bias: __m256i) -> __m256i {
        let d = _mm256_xor_si256(_mm256_sub_epi16(x, lov), bias);
        _mm256_cmpgt_epi16(spanb, d)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn window_word(ptr: *const u16, lo: u16, span: u16) -> u64 {
        let lov = _mm256_set1_epi16(lo as i16);
        let bias = _mm256_set1_epi16(i16::MIN);
        let spanb = _mm256_xor_si256(_mm256_set1_epi16(span as i16), bias);
        let mut word = 0u64;
        for half in 0..2 {
            let a = _mm256_loadu_si256(ptr.add(half * 32) as *const __m256i);
            let b = _mm256_loadu_si256(ptr.add(half * 32 + 16) as *const __m256i);
            let m = pair_mask(
                window_cmp(a, lov, spanb, bias),
                window_cmp(b, lov, spanb, bias),
            );
            word |= u64::from(m) << (half * 32);
        }
        word
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn eq_word(ptr: *const u16, target: u16) -> u64 {
        let tv = _mm256_set1_epi16(target as i16);
        let mut word = 0u64;
        for half in 0..2 {
            let a = _mm256_loadu_si256(ptr.add(half * 32) as *const __m256i);
            let b = _mm256_loadu_si256(ptr.add(half * 32 + 16) as *const __m256i);
            let m = pair_mask(_mm256_cmpeq_epi16(a, tv), _mm256_cmpeq_epi16(b, tv));
            word |= u64::from(m) << (half * 32);
        }
        word
    }

    avx2_min_max!(
        u16,
        16,
        set1 = _mm256_set1_epi16,
        min = _mm256_min_epu16,
        max = _mm256_max_epu16
    );
    arch_kernels!("avx2", u16);
}

/// u32 lanes: 8 per vector via `movemask_ps`.
pub mod w32 {
    use super::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn window_word(ptr: *const u32, lo: u32, span: u32) -> u64 {
        let lov = _mm256_set1_epi32(lo as i32);
        let bias = _mm256_set1_epi32(i32::MIN);
        let spanb = _mm256_xor_si256(_mm256_set1_epi32(span as i32), bias);
        let mut word = 0u64;
        for i in 0..8 {
            let x = _mm256_loadu_si256(ptr.add(i * 8) as *const __m256i);
            let d = _mm256_xor_si256(_mm256_sub_epi32(x, lov), bias);
            let c = _mm256_cmpgt_epi32(spanb, d);
            let m = _mm256_movemask_ps(_mm256_castsi256_ps(c)) as u32;
            word |= u64::from(m) << (i * 8);
        }
        word
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn eq_word(ptr: *const u32, target: u32) -> u64 {
        let tv = _mm256_set1_epi32(target as i32);
        let mut word = 0u64;
        for i in 0..8 {
            let x = _mm256_loadu_si256(ptr.add(i * 8) as *const __m256i);
            let m = _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, tv))) as u32;
            word |= u64::from(m) << (i * 8);
        }
        word
    }

    avx2_min_max!(
        u32,
        8,
        set1 = _mm256_set1_epi32,
        min = _mm256_min_epu32,
        max = _mm256_max_epu32
    );
    arch_kernels!("avx2", u32);
}

/// u64 lanes: 4 per vector via `movemask_pd`; AVX2 lacks `epu64` min/max,
/// so min/max tracks via biased `cmpgt_epi64` + `blendv`.
pub mod w64 {
    use super::*;

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn window_word(ptr: *const u64, lo: u64, span: u64) -> u64 {
        let lov = _mm256_set1_epi64x(lo as i64);
        let bias = _mm256_set1_epi64x(i64::MIN);
        let spanb = _mm256_xor_si256(_mm256_set1_epi64x(span as i64), bias);
        let mut word = 0u64;
        for i in 0..16 {
            let x = _mm256_loadu_si256(ptr.add(i * 4) as *const __m256i);
            let d = _mm256_xor_si256(_mm256_sub_epi64(x, lov), bias);
            let c = _mm256_cmpgt_epi64(spanb, d);
            let m = _mm256_movemask_pd(_mm256_castsi256_pd(c)) as u32;
            word |= u64::from(m) << (i * 4);
        }
        word
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn eq_word(ptr: *const u64, target: u64) -> u64 {
        let tv = _mm256_set1_epi64x(target as i64);
        let mut word = 0u64;
        for i in 0..16 {
            let x = _mm256_loadu_si256(ptr.add(i * 4) as *const __m256i);
            let m = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(x, tv))) as u32;
            word |= u64::from(m) << (i * 4);
        }
        word
    }

    /// Min/max of `x ^ flip` over a non-empty lane.
    ///
    /// Tracks extrema in the sign-biased domain (`x ^ flip ^ 1<<63`) where
    /// `cmpgt_epi64` orders correctly, un-biasing on reduction.
    ///
    /// # Safety
    /// Requires AVX2; `lane` must be non-empty.
    #[target_feature(enable = "avx2")]
    pub unsafe fn min_max_flipped(lane: &[u64], flip: u64) -> (u64, u64) {
        let sign = 1u64 << 63;
        let prev = _mm256_set1_epi64x((flip ^ sign) as i64);
        let mut vmin = _mm256_set1_epi64x(i64::MAX);
        let mut vmax = _mm256_set1_epi64x(i64::MIN);
        let mut chunks = lane.chunks_exact(4);
        for c in &mut chunks {
            let x = _mm256_xor_si256(_mm256_loadu_si256(c.as_ptr() as *const __m256i), prev);
            vmin = _mm256_blendv_epi8(vmin, x, _mm256_cmpgt_epi64(vmin, x));
            vmax = _mm256_blendv_epi8(vmax, x, _mm256_cmpgt_epi64(x, vmax));
        }
        let mut mins = [0u64; 4];
        let mut maxs = [0u64; 4];
        _mm256_storeu_si256(mins.as_mut_ptr() as *mut __m256i, vmin);
        _mm256_storeu_si256(maxs.as_mut_ptr() as *mut __m256i, vmax);
        // Un-bias back to the flipped (order-normalized unsigned) domain.
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for i in 0..4 {
            lo = lo.min(mins[i] ^ sign);
            hi = hi.max(maxs[i] ^ sign);
        }
        for &x in chunks.remainder() {
            let v = x ^ flip;
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    arch_kernels!("avx2", u64);
}
