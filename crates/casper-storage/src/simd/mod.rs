//! Explicit SIMD scan kernels with runtime CPU-feature dispatch.
//!
//! The kernels in [`crate::kernels`] used to rely on auto-vectorization
//! under `-C target-cpu=native`, which tied the binary to the build host's
//! ISA. This module replaces that with *explicit* vector implementations
//! selected **once at startup**:
//!
//! * [`SimdLevel::Avx512`] — 512-bit compares producing `__mmask` registers
//!   directly (one `vpcmpub` yields a whole 64-bit bitmap word for a u8
//!   lane). Requires `avx512f` + `avx512bw`.
//! * [`SimdLevel::Avx2`] — 256-bit compares + `movemask` word packing.
//! * [`SimdLevel::Scalar`] — the portable chunked-scalar fallback in
//!   [`portable`]; branchless accumulation loops that auto-vectorize on
//!   whatever the baseline target offers (SSE2 on x86-64), and the only
//!   path on non-x86 targets.
//!
//! The level is detected via `is_x86_feature_detected!` and cached in a
//! `OnceLock`; the `CASPER_FORCE_SCALAR=1` environment variable forces the
//! fallback (CI runs the kernel benches under both settings), and
//! `CASPER_SIMD=scalar|avx2|avx512` pins a specific level (clamped to what
//! the host actually supports).
//!
//! # Kernel surface
//!
//! Everything is expressed over *unsigned native lanes* ([`SimdElem`]:
//! `u8`/`u16`/`u32`/`u64`). Plain columns reinterpret their values as raw
//! bits ([`crate::value::ColumnValue::lane_bits`]); the compressed codecs'
//! packed offset/code lanes are already native unsigned. Range predicates
//! arrive pre-rebased as **modular windows**: `x` matches iff
//! `(x - lo) mod 2^BITS < span`, one wrapping subtract plus one unsigned
//! compare. The window test is translation-invariant, so a caller whose
//! interval `[lo, hi)` lives in any order-congruent domain (ordered-u64
//! space, raw-bits space, rebased offset space) passes its own `lo` and
//! `span = hi - lo` and gets exact half-open-interval semantics — even
//! when the raw-bits window wraps, as it does for signed intervals
//! straddling zero (see `kernels/mod.rs` for the derivation).
//!
//! Every dispatched kernel is bit-exact against its [`portable`] twin —
//! property-tested across widths, unaligned offsets and ragged tails in
//! `tests/simd_dispatch.rs`.

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;
#[cfg(target_arch = "x86_64")]
pub(crate) mod avx512;
pub mod portable;

use std::sync::OnceLock;

/// Instruction-set level the dispatched kernels run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Portable chunked-scalar fallback (auto-vectorized by the compiler).
    Scalar,
    /// 256-bit AVX2 compares + movemask word packing.
    Avx2,
    /// 512-bit AVX-512 compares producing mask registers directly
    /// (requires `avx512f` and `avx512bw`).
    Avx512,
}

impl SimdLevel {
    /// Human-readable label (used by benches and the trajectory output).
    pub fn label(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

/// Highest level the running CPU supports.
fn detect_host() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512bw") {
            return SimdLevel::Avx512;
        }
        if is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
    }
    SimdLevel::Scalar
}

/// Resolve the dispatch level from the environment knobs and the host
/// capabilities. Pure so tests can drive every combination:
///
/// * `force_scalar` (from `CASPER_FORCE_SCALAR`, any non-empty value other
///   than `0`) wins over everything;
/// * `request` (from `CASPER_SIMD`) picks a level by name, clamped to
///   `host` — asking for AVX-512 on an AVX2-only machine yields AVX2;
/// * otherwise the host level is used as-is.
pub fn select_level(request: Option<&str>, force_scalar: bool, host: SimdLevel) -> SimdLevel {
    if force_scalar {
        return SimdLevel::Scalar;
    }
    match request.and_then(parse_level) {
        Some(r) => r.min(host),
        None => host,
    }
}

/// Parse a `CASPER_SIMD` level name (`None` for unrecognized input).
fn parse_level(s: &str) -> Option<SimdLevel> {
    let s = s.trim();
    if s.eq_ignore_ascii_case("scalar") {
        Some(SimdLevel::Scalar)
    } else if s.eq_ignore_ascii_case("avx2") {
        Some(SimdLevel::Avx2)
    } else if s.eq_ignore_ascii_case("avx512") {
        Some(SimdLevel::Avx512)
    } else {
        None
    }
}

/// The process-wide dispatch level, detected once on first use.
///
/// Every call also refreshes the `casper_simd_dispatch_level` gauge
/// (0 = scalar, 1 = AVX2, 2 = AVX-512) so telemetry engaged *after* the
/// first dispatch still learns the level.
pub fn level() -> SimdLevel {
    static OBS_LEVEL: casper_obs::GaugeDef =
        casper_obs::GaugeDef::new("casper_simd_dispatch_level");
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    let level = *LEVEL.get_or_init(|| {
        let force = std::env::var("CASPER_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        let request = std::env::var("CASPER_SIMD").ok();
        if let Some(s) = request.as_deref() {
            // A pin that silently fails to pin would let CI smoke-test the
            // wrong backend while the step still passes — make typos loud.
            if parse_level(s).is_none() {
                eprintln!(
                    "[casper-simd] unrecognized CASPER_SIMD={s:?} \
                     (expected scalar|avx2|avx512); using host detection"
                );
            }
        }
        select_level(request.as_deref(), force, detect_host())
    });
    OBS_LEVEL.set(level as u8 as f64);
    level
}

/// A fixed-width unsigned lane element the SIMD kernels scan.
///
/// The five dispatched kernels cover the full scan surface: equality and
/// window counting, bitmap selection (one `u64` word per 64 values),
/// fused filter + `u32`-payload aggregation, and min/max (optionally
/// through an order-normalizing XOR so signed columns reuse the unsigned
/// comparators).
pub trait SimdElem:
    Copy + Ord + Eq + Send + Sync + std::fmt::Debug + std::fmt::Display + 'static
{
    /// Lane width in bits.
    const BITS: u32;
    /// The lane's maximum value, widened to `u64`.
    const MAX_WIDE: u64;

    /// Narrow a widened value (callers guarantee `v <= MAX_WIDE`).
    fn narrow(v: u64) -> Self;
    /// Widen to `u64`.
    fn widen(self) -> u64;
    /// Wrapping subtraction in lane width.
    fn wsub(self, rhs: Self) -> Self;

    /// Count lane entries equal to `target` (dispatched).
    fn count_eq(lane: &[Self], target: Self) -> u64;
    /// Count lane entries in the modular window — `x` matches iff
    /// `(x - lo) mod 2^BITS < span` (dispatched).
    fn count_window(lane: &[Self], lo: Self, span: Self) -> u64;
    /// Evaluate the window over the lane into bitmap words — bit `i` of
    /// word `w` ⇔ `lane[w * 64 + i]` qualifies, final partial word
    /// zero-padded. Returns the match count (dispatched).
    fn bitmap_window(lane: &[Self], lo: Self, span: Self, out: &mut Vec<u64>) -> u64;
    /// Fused window filter + payload aggregation: returns
    /// `(matched, sum of payload[i] where keys[i] qualifies)`.
    /// `keys.len() == payload.len()` required (dispatched).
    fn sum_window(keys: &[Self], payload: &[u32], lo: Self, span: Self) -> (u64, u64);
    /// Min/max of `x ^ flip` over the lane (`None` when empty). Passing
    /// the sign mask as `flip` turns the unsigned comparators into
    /// order-correct signed ones; pass `0` for plain unsigned (dispatched).
    fn min_max_flipped(lane: &[Self], flip: Self) -> Option<(Self, Self)>;
    /// Append `base + i` for every `i` with `lane[i] == target` (ascending;
    /// `base + lane.len()` must fit in `u32`); returns the match count. On
    /// AVX-512 this is the `vpcompressd` compress-store collect pass; AVX2
    /// has no compress-store, so that level (and Scalar) runs the portable
    /// twin (dispatched).
    fn select_eq_positions(lane: &[Self], target: Self, base: u32, out: &mut Vec<u32>) -> u64;
}

/// Generate the four lane-kernel loop shapes for an arch backend width
/// module. The module provides the two 64-element primitives `window_word`
/// / `eq_word` (and a hand-written `min_max_flipped`); this macro wraps
/// them in the shared full-lane loops: whole 64-element blocks go through
/// the SIMD word primitive, the ragged tail runs scalar.
#[cfg(target_arch = "x86_64")]
macro_rules! arch_kernels {
    ($feature:literal, $t:ty) => {
        /// Count lane entries equal to `target`.
        ///
        /// # Safety
        /// The CPU must support the enabled target feature (the dispatcher
        /// verifies this via `is_x86_feature_detected!`).
        #[target_feature(enable = $feature)]
        pub unsafe fn count_eq(lane: &[$t], target: $t) -> u64 {
            let mut acc = 0u64;
            let mut chunks = lane.chunks_exact(64);
            for c in &mut chunks {
                acc += u64::from(eq_word(c.as_ptr(), target).count_ones());
            }
            for &x in chunks.remainder() {
                acc += u64::from(x == target);
            }
            acc
        }

        /// Count lane entries in the window `[lo, lo + span)`.
        ///
        /// # Safety
        /// The CPU must support the enabled target feature.
        #[target_feature(enable = $feature)]
        pub unsafe fn count_window(lane: &[$t], lo: $t, span: $t) -> u64 {
            let mut acc = 0u64;
            let mut chunks = lane.chunks_exact(64);
            for c in &mut chunks {
                acc += u64::from(window_word(c.as_ptr(), lo, span).count_ones());
            }
            for &x in chunks.remainder() {
                acc += u64::from(x.wrapping_sub(lo) < span);
            }
            acc
        }

        /// Evaluate the window into bitmap words (bit `i` of word `w` ⇔
        /// `lane[w * 64 + i]`; zero-padded tail word). Returns the match
        /// count.
        ///
        /// # Safety
        /// The CPU must support the enabled target feature.
        #[target_feature(enable = $feature)]
        pub unsafe fn bitmap_window(lane: &[$t], lo: $t, span: $t, out: &mut Vec<u64>) -> u64 {
            let mut matched = 0u64;
            let mut chunks = lane.chunks_exact(64);
            for c in &mut chunks {
                let word = window_word(c.as_ptr(), lo, span);
                matched += u64::from(word.count_ones());
                out.push(word);
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                let mut word = 0u64;
                for (bit, &x) in rem.iter().enumerate() {
                    word |= u64::from(x.wrapping_sub(lo) < span) << bit;
                }
                matched += u64::from(word.count_ones());
                out.push(word);
            }
            matched
        }

        /// Fused window filter + payload aggregation: `(matched, sum)`.
        /// Empty match words skip their payload block entirely; dense words
        /// take the vectorized straight-line sum; sparse words decode set
        /// bits with count-trailing-zeros.
        ///
        /// # Safety
        /// The CPU must support the enabled target feature, and
        /// `keys.len() == payload.len()`.
        #[target_feature(enable = $feature)]
        pub unsafe fn sum_window(keys: &[$t], payload: &[u32], lo: $t, span: $t) -> (u64, u64) {
            debug_assert_eq!(keys.len(), payload.len());
            let mut matched = 0u64;
            let mut acc = 0u64;
            let blocks = keys.len() / 64;
            for b in 0..blocks {
                let base = b * 64;
                let word = window_word(keys.as_ptr().add(base), lo, span);
                if word == 0 {
                    continue;
                }
                matched += u64::from(word.count_ones());
                if word == u64::MAX {
                    acc += super::sum64_u32(payload.as_ptr().add(base));
                } else {
                    let mut bits = word;
                    while bits != 0 {
                        let bit = bits.trailing_zeros() as usize;
                        acc += u64::from(*payload.get_unchecked(base + bit));
                        bits &= bits - 1;
                    }
                }
            }
            for j in blocks * 64..keys.len() {
                let m = u64::from(keys[j].wrapping_sub(lo) < span);
                matched += m;
                acc += m * u64::from(payload[j]);
            }
            (matched, acc)
        }
    };
}
#[cfg(target_arch = "x86_64")]
pub(crate) use arch_kernels;

/// Dispatch one kernel call to the active backend.
///
/// Enum dispatch (not function pointers): generic monomorphization makes a
/// per-width pointer table awkward, and the predictable two-way branch on a
/// cached enum costs nothing next to a lane scan.
macro_rules! dispatch {
    ($width:ident, $fn:ident ( $($arg:expr),* )) => {{
        match $crate::simd::level() {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `level()` only returns Avx512/Avx2 when
            // `is_x86_feature_detected!` proved the features at startup.
            SimdLevel::Avx512 => unsafe { avx512::$width::$fn($($arg),*) },
            #[cfg(target_arch = "x86_64")]
            SimdLevel::Avx2 => unsafe { avx2::$width::$fn($($arg),*) },
            _ => portable::$fn($($arg),*),
        }
    }};
}

macro_rules! impl_simd_elem {
    ($t:ty, $width:ident) => {
        impl SimdElem for $t {
            const BITS: u32 = <$t>::BITS;
            const MAX_WIDE: u64 = <$t>::MAX as u64;

            #[inline]
            fn narrow(v: u64) -> Self {
                v as $t
            }

            #[inline]
            fn widen(self) -> u64 {
                self as u64
            }

            #[inline]
            fn wsub(self, rhs: Self) -> Self {
                self.wrapping_sub(rhs)
            }

            #[inline]
            fn count_eq(lane: &[Self], target: Self) -> u64 {
                dispatch!($width, count_eq(lane, target))
            }

            #[inline]
            fn count_window(lane: &[Self], lo: Self, span: Self) -> u64 {
                dispatch!($width, count_window(lane, lo, span))
            }

            #[inline]
            fn bitmap_window(lane: &[Self], lo: Self, span: Self, out: &mut Vec<u64>) -> u64 {
                dispatch!($width, bitmap_window(lane, lo, span, out))
            }

            #[inline]
            fn sum_window(keys: &[Self], payload: &[u32], lo: Self, span: Self) -> (u64, u64) {
                // Hard assert (not debug): the intrinsic backends index the
                // payload by key position without bounds checks, so a length
                // mismatch from a safe caller must panic here rather than
                // read out of bounds inside the unsafe dispatch.
                assert_eq!(
                    keys.len(),
                    payload.len(),
                    "sum_window requires keys and payload of equal length"
                );
                dispatch!($width, sum_window(keys, payload, lo, span))
            }

            #[inline]
            fn min_max_flipped(lane: &[Self], flip: Self) -> Option<(Self, Self)> {
                if lane.is_empty() {
                    return None;
                }
                Some(dispatch!($width, min_max_flipped(lane, flip)))
            }

            #[inline]
            fn select_eq_positions(
                lane: &[Self],
                target: Self,
                base: u32,
                out: &mut Vec<u32>,
            ) -> u64 {
                debug_assert!(base as u64 + lane.len() as u64 <= u64::from(u32::MAX) + 1);
                match $crate::simd::level() {
                    #[cfg(target_arch = "x86_64")]
                    // SAFETY: `level()` only returns Avx512 when
                    // `is_x86_feature_detected!` proved the features.
                    SimdLevel::Avx512 => unsafe {
                        avx512::$width::select_eq_positions(lane, target, base, out)
                    },
                    // AVX2 has no compress-store; the portable loop is the
                    // collect pass below AVX-512.
                    _ => portable::select_eq_positions(lane, target, base, out),
                }
            }
        }
    };
}

impl_simd_elem!(u8, w8);
impl_simd_elem!(u16, w16);
impl_simd_elem!(u32, w32);
impl_simd_elem!(u64, w64);

/// Sum `payload[i]` (widened to `u64`) for every position whose bit is set
/// in `mask` (same word layout as [`SimdElem::bitmap_window`]). Positions
/// beyond `payload.len()` must be clear. Dense words take a vectorized
/// straight-line sum; sparse words decode set bits with
/// count-trailing-zeros.
pub fn sum_payload_masked(payload: &[u32], mask: &[u64]) -> u64 {
    debug_assert!(payload.len() <= mask.len() * 64);
    let mut acc = 0u64;
    for (w, &word) in mask.iter().enumerate() {
        let lane_base = w * 64;
        if word == u64::MAX {
            acc += sum_u32(&payload[lane_base..lane_base + 64]);
        } else {
            let mut bits = word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                acc += u64::from(payload[lane_base + bit]);
                bits &= bits - 1;
            }
        }
    }
    acc
}

/// Sum a `u32` slice into `u64` (dispatched widening sum).
pub fn sum_u32(payload: &[u32]) -> u64 {
    match level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: level() proved the feature set at startup.
        SimdLevel::Avx512 => unsafe { avx512::sum_u32(payload) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::Avx2 => unsafe { avx2::sum_u32(payload) },
        _ => portable::sum_u32(payload),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_level_honours_force_scalar() {
        for host in [SimdLevel::Scalar, SimdLevel::Avx2, SimdLevel::Avx512] {
            assert_eq!(select_level(None, true, host), SimdLevel::Scalar);
            assert_eq!(select_level(Some("avx512"), true, host), SimdLevel::Scalar);
        }
    }

    #[test]
    fn select_level_clamps_requests_to_host() {
        assert_eq!(
            select_level(Some("avx512"), false, SimdLevel::Avx2),
            SimdLevel::Avx2
        );
        assert_eq!(
            select_level(Some("avx2"), false, SimdLevel::Avx512),
            SimdLevel::Avx2
        );
        assert_eq!(
            select_level(Some("scalar"), false, SimdLevel::Avx512),
            SimdLevel::Scalar
        );
        assert_eq!(
            select_level(Some("AVX512"), false, SimdLevel::Avx512),
            SimdLevel::Avx512
        );
    }

    #[test]
    fn select_level_ignores_garbage_requests() {
        assert_eq!(
            select_level(Some("neon"), false, SimdLevel::Avx2),
            SimdLevel::Avx2
        );
        assert_eq!(
            select_level(None, false, SimdLevel::Scalar),
            SimdLevel::Scalar
        );
    }

    #[test]
    fn wrapping_windows_are_exact() {
        // A raw-bits window that wraps (signed interval straddling zero):
        // [-2, 3) over i8 bit patterns = lo 0xFE, span 5.
        let lane: Vec<u8> = vec![0xFD, 0xFE, 0xFF, 0x00, 0x01, 0x02, 0x03, 0x80, 0x7F];
        let inside = |x: i8| (-2..3).contains(&x);
        let want = lane.iter().filter(|&&b| inside(b as i8)).count() as u64;
        assert_eq!(u8::count_window(&lane, 0xFE, 5), want);
        assert_eq!(portable::count_window(&lane, 0xFEu8, 5), want);
    }

    #[test]
    fn dispatched_kernels_match_portable_smoke() {
        // The exhaustive property tests live in tests/simd_dispatch.rs;
        // this is a quick in-crate tripwire across all four widths.
        fn check<T: SimdElem>(vals: &[T], lo: T, span: T, eq: T) {
            assert_eq!(
                T::count_window(vals, lo, span),
                portable::count_window(vals, lo, span)
            );
            assert_eq!(T::count_eq(vals, eq), portable::count_eq(vals, eq));
            let (mut a, mut b) = (Vec::new(), Vec::new());
            assert_eq!(
                T::bitmap_window(vals, lo, span, &mut a),
                portable::bitmap_window(vals, lo, span, &mut b)
            );
            assert_eq!(a, b);
            let payload: Vec<u32> = (0..vals.len() as u32).collect();
            assert_eq!(
                T::sum_window(vals, &payload, lo, span),
                portable::sum_window(vals, &payload, lo, span)
            );
            assert_eq!(
                T::min_max_flipped(vals, T::narrow(0)),
                portable_min_max(vals)
            );
        }
        fn portable_min_max<T: SimdElem>(vals: &[T]) -> Option<(T, T)> {
            if vals.is_empty() {
                None
            } else {
                Some(portable::min_max_flipped(vals, T::narrow(0)))
            }
        }
        let v8: Vec<u8> = (0..331u32).map(|i| (i * 97 % 251) as u8).collect();
        let v16: Vec<u16> = (0..331u32).map(|i| (i * 977 % 60013) as u16).collect();
        let v32: Vec<u32> = (0..331u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let v64: Vec<u64> = (0..331u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        check(&v8, 30u8, 90, 42);
        check(&v16, 1000u16, 30000, 977);
        check(&v32, 1 << 20, 1 << 30, v32[7]);
        check(&v64, 1 << 40, 1 << 62, v64[11]);
    }

    #[test]
    fn masked_sum_and_dense_sum_agree_with_iterators() {
        let payload: Vec<u32> = (0..150u32).map(|i| i * 7 + 3).collect();
        assert_eq!(
            sum_u32(&payload),
            payload.iter().map(|&p| u64::from(p)).sum::<u64>()
        );
        // Mask with a dense word, a sparse word, and a padded tail word.
        let mut mask = vec![u64::MAX, 0b1011, 0];
        mask[2] |= 1 << 7; // position 135
        let want: u64 = (0..64u32)
            .chain([64, 65, 67, 135])
            .map(|i| u64::from(payload[i as usize]))
            .sum();
        assert_eq!(sum_payload_masked(&payload, &mask), want);
        assert_eq!(sum_u32(&[]), 0);
    }
}
