//! The range-partitioned column chunk — Casper's physical unit of storage.
//!
//! A [`PartitionedChunk`] owns a fixed-width key column (plus optional
//! payload columns) organized into contiguous range partitions. Each
//! partition holds its live values first (internally *unordered*, §3) and
//! then `ghosts` empty slots (Fig. 5). Partitions are physically adjacent:
//! `parts[p+1].start == parts[p].extent_end()`. Free capacity beyond the
//! last partition forms the column *tail*, which plays the role of the
//! paper's "(already) available empty slot at the end of the column"
//! (Fig. 4a).
//!
//! The slot-transfer primitives that implement rippling live here
//! (`pull_slot_from_right` and friends); the public
//! operations built on them (point/range queries, insert, delete, update)
//! are in [`crate::ops`].

use crate::compress::StorageMode;
use crate::error::StorageError;
use crate::ghost::GhostPlan;
use crate::index::PartitionIndex;
use crate::kernels::{Fragment, ZoneMap};
use crate::layout::{BlockLayout, PartitionSpec};
use crate::ops::OpCost;
use crate::partition::PartitionMeta;
use crate::payload::PayloadSet;
use crate::value::ColumnValue;
use crate::UpdatePolicy;

/// Build- and run-time configuration of a chunk.
#[derive(Debug, Clone, Copy)]
pub struct ChunkConfig {
    /// How deletes/inserts maintain density (see [`UpdatePolicy`]).
    pub policy: UpdatePolicy,
    /// Extra physical slots reserved at build time, as a fraction of the
    /// initial value count. The tail feeds ripple-inserts when no ghost
    /// donor exists.
    pub capacity_slack: f64,
    /// How many ghost slots to pull per ripple (§6.1: "Casper moves a block
    /// of ghost values every time one is necessary"). The first slot is
    /// consumed by the triggering insert; the rest stay as ghosts of the
    /// target partition.
    pub ghost_fetch_block: usize,
}

impl Default for ChunkConfig {
    fn default() -> Self {
        Self {
            policy: UpdatePolicy::Ghost,
            capacity_slack: 0.05,
            ghost_fetch_block: 1,
        }
    }
}

impl ChunkConfig {
    /// Dense configuration (the paper's non-buffered baselines).
    pub fn dense() -> Self {
        Self {
            policy: UpdatePolicy::Dense,
            ..Self::default()
        }
    }
}

/// A range-partitioned, optionally ghost-buffered column chunk.
#[derive(Debug, Clone)]
pub struct PartitionedChunk<K: ColumnValue> {
    /// Physical slots. `data.len()` is the chunk's physical capacity; slots
    /// outside every partition extent (the tail) and ghost slots hold stale
    /// values that are never read.
    pub(crate) data: Vec<K>,
    pub(crate) parts: Vec<PartitionMeta<K>>,
    /// Tight per-partition min/max over live values, kept in lock-step with
    /// `parts` by the write paths; read paths prune on it before scanning.
    pub(crate) zones: Vec<ZoneMap<K>>,
    /// Per-partition encoded fragments (§6.2 storage modes): `None` means
    /// plain slots; `Some` is a scan-optimized encoding of the partition's
    /// live values that the read paths consume instead of the slots. Any
    /// write physically touching a partition drops its fragment back to
    /// plain first (the decode-on-write escape hatch).
    pub(crate) frags: Vec<Option<Fragment<K>>>,
    pub(crate) index: PartitionIndex<K>,
    pub(crate) payloads: PayloadSet,
    pub(crate) layout: BlockLayout,
    pub(crate) config: ChunkConfig,
    /// Total live values across partitions.
    pub(crate) live: usize,
}

impl<K: ColumnValue> PartitionedChunk<K> {
    /// Build a chunk from raw (unsorted) values, a block-granularity
    /// partition spec, and a ghost plan.
    pub fn build(
        values: Vec<K>,
        spec: &PartitionSpec,
        layout: BlockLayout,
        ghosts: &GhostPlan,
        config: ChunkConfig,
    ) -> Result<Self, StorageError> {
        Self::build_with_payloads(values, Vec::new(), spec, layout, ghosts, config)
    }

    /// As [`PartitionedChunk::build`], with slot-aligned payload columns
    /// (each exactly as long as `values`). Rows are co-sorted by key.
    pub fn build_with_payloads(
        mut values: Vec<K>,
        mut payload_cols: Vec<Vec<u32>>,
        spec: &PartitionSpec,
        layout: BlockLayout,
        ghosts: &GhostPlan,
        config: ChunkConfig,
    ) -> Result<Self, StorageError> {
        if values.is_empty() {
            return Err(StorageError::InvalidSpec {
                reason: "cannot build a chunk from zero values".into(),
            });
        }
        spec.validate()
            .map_err(|reason| StorageError::InvalidSpec { reason })?;
        if spec.n_blocks() != layout.num_blocks(values.len()) {
            return Err(StorageError::InvalidSpec {
                reason: format!(
                    "spec covers {} blocks but {} values need {}",
                    spec.n_blocks(),
                    values.len(),
                    layout.num_blocks(values.len())
                ),
            });
        }
        let k = spec.partition_count();
        if ghosts.partitions() != k {
            return Err(StorageError::GhostPlanMismatch {
                partitions: k,
                plan_entries: ghosts.partitions(),
            });
        }
        for col in &payload_cols {
            if col.len() != values.len() {
                return Err(StorageError::PayloadArity {
                    expected: values.len(),
                    got: col.len(),
                });
            }
        }

        // Co-sort rows by key. Duplicate keys stay adjacent, which keeps
        // them in the same partition as §4.1 requires (partition boundaries
        // are at block granularity and blocks are assigned by rank).
        if payload_cols.is_empty() {
            values.sort_unstable();
        } else {
            let mut perm: Vec<u32> = (0..values.len() as u32).collect();
            perm.sort_by_key(|&i| values[i as usize]);
            values = perm.iter().map(|&i| values[i as usize]).collect();
            for col in &mut payload_cols {
                *col = perm.iter().map(|&i| col[i as usize]).collect();
            }
        }

        let m = values.len();
        let sizes = spec.value_sizes(m, &layout);
        // "Duplicate values should be in the same partition" (§4.1): advance
        // every internal boundary past any run of equal values straddling
        // it. Partitions emptied by the adjustment keep an inherited bound
        // and simply never receive values.
        let mut ends: Vec<usize> = Vec::with_capacity(sizes.len());
        let mut cum = 0usize;
        for &s in &sizes {
            cum += s;
            ends.push(cum);
        }
        for i in 0..ends.len().saturating_sub(1) {
            let floor = if i == 0 { 0 } else { ends[i - 1] };
            let mut e = ends[i].max(floor);
            while e > floor && e < m && values[e] == values[e - 1] {
                e += 1;
            }
            ends[i] = e.min(m);
        }
        let sizes: Vec<usize> = ends
            .iter()
            .scan(0usize, |prev, &e| {
                let s = e - *prev;
                *prev = e;
                Some(s)
            })
            .collect();
        let slack = ((m as f64 * config.capacity_slack).ceil() as usize).max(64);
        let physical = m + ghosts.total() + slack;

        let mut data = vec![K::default(); physical];
        let mut parts = Vec::with_capacity(k);
        let mut zones = Vec::with_capacity(k);
        let mut bounds = Vec::with_capacity(k);
        let mut cursor = 0usize; // physical write position
        let mut consumed = 0usize; // values consumed
        for (p, &len) in sizes.iter().enumerate() {
            let src = &values[consumed..consumed + len];
            data[cursor..cursor + len].copy_from_slice(src);
            let (min, max) = if len > 0 {
                (src[0], src[len - 1])
            } else {
                // Degenerate (only possible for a trailing empty partition):
                // inherit the previous bound so the covering ranges stay
                // monotone.
                let prev = bounds.last().copied().unwrap_or(K::MIN_VALUE);
                (prev, prev)
            };
            let g = ghosts.counts()[p];
            parts.push(PartitionMeta {
                start: cursor,
                len,
                ghosts: g,
                min,
                max,
            });
            zones.push(if len > 0 {
                ZoneMap { min, max }
            } else {
                ZoneMap::empty()
            });
            bounds.push(max);
            cursor += len + g;
            consumed += len;
        }

        let mut payloads = PayloadSet::from_columns(Vec::new(), physical);
        if !payload_cols.is_empty() {
            // Scatter each payload column into the ghost-interleaved
            // physical layout.
            let mut scattered: Vec<Vec<u32>> =
                payload_cols.iter().map(|_| vec![0u32; physical]).collect();
            for (ci, col) in payload_cols.iter().enumerate() {
                let mut consumed = 0usize;
                for part in &parts {
                    scattered[ci][part.start..part.start + part.len]
                        .copy_from_slice(&col[consumed..consumed + part.len]);
                    consumed += part.len;
                }
            }
            payloads = PayloadSet::from_columns(scattered, physical);
        }

        Ok(Self {
            data,
            frags: (0..parts.len()).map(|_| None).collect(),
            parts,
            zones,
            index: PartitionIndex::new(bounds),
            payloads,
            layout,
            config,
            live: m,
        })
    }

    /// Convenience constructor: a single unstructured partition over the
    /// values (the vanilla column-store layout).
    pub fn single_partition(
        values: Vec<K>,
        layout: BlockLayout,
        config: ChunkConfig,
    ) -> Result<Self, StorageError> {
        let n = layout.num_blocks(values.len().max(1));
        Self::build(
            values,
            &PartitionSpec::single(n),
            layout,
            &GhostPlan::none(1),
            config,
        )
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Number of live values.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.live
    }

    /// Number of partitions.
    #[inline]
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// Partition metadata.
    #[inline]
    pub fn partitions(&self) -> &[PartitionMeta<K>] {
        &self.parts
    }

    /// Total ghost slots currently buffered across all partitions.
    pub fn ghost_total(&self) -> usize {
        self.parts.iter().map(|p| p.ghosts).sum()
    }

    /// Physical slot capacity.
    #[inline]
    pub fn physical_capacity(&self) -> usize {
        self.data.len()
    }

    /// Free slots in the tail beyond the last partition's extent.
    pub fn tail_free(&self) -> usize {
        self.data.len() - self.parts.last().map_or(0, |p| p.extent_end())
    }

    /// Grow the physical capacity by `extra` slots ("if no empty slots are
    /// available, the column is expanded", §3). Payload columns grow in
    /// lock-step.
    pub fn grow(&mut self, extra: usize) {
        let new_len = self.data.len() + extra;
        self.data.resize(new_len, K::default());
        self.payloads.grow_to(new_len);
    }

    /// The block geometry the chunk was built with.
    #[inline]
    pub fn layout(&self) -> BlockLayout {
        self.layout
    }

    /// The update policy in effect.
    #[inline]
    pub fn policy(&self) -> UpdatePolicy {
        self.config.policy
    }

    /// Live values of one partition (unordered).
    pub fn partition_values(&self, p: usize) -> &[K] {
        let m = &self.parts[p];
        &self.data[m.start..m.live_end()]
    }

    /// Access to payload columns (read-only).
    pub fn payloads(&self) -> &PayloadSet {
        &self.payloads
    }

    /// Heap bytes resident for this chunk: slots, partition metadata,
    /// zone maps, encoded fragments, the partition index, and payloads.
    /// Used by the resource governor's budget accounting; an estimate of
    /// allocator-visible memory, not a byte-exact malloc audit.
    pub fn resident_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<K>()
            + self.parts.capacity() * std::mem::size_of::<PartitionMeta<K>>()
            + self.zones.capacity() * std::mem::size_of::<ZoneMap<K>>()
            + self.frags.capacity() * std::mem::size_of::<Option<Fragment<K>>>()
            + self
                .frags
                .iter()
                .flatten()
                .map(Fragment::encoded_bytes)
                .sum::<usize>()
            + self.index.resident_bytes()
            + self.payloads.resident_bytes()
    }

    /// Per-partition zone maps (tight live min/max), parallel to
    /// [`PartitionedChunk::partitions`].
    #[inline]
    pub fn zones(&self) -> &[ZoneMap<K>] {
        &self.zones
    }

    /// Recompute partition `m`'s zone map from its live values. Called by
    /// write paths only when a boundary value was removed — in which case
    /// the caller has already paid a full partition scan, so this keeps
    /// zone maintenance within the operation's existing cost envelope.
    #[inline]
    pub(crate) fn recompute_zone(&mut self, m: usize) {
        let part = self.parts[m];
        self.zones[m] = ZoneMap::from_values(&self.data[part.start..part.live_end()]);
    }

    // ------------------------------------------------------------------
    // Per-partition storage modes (§6.2 compressed execution)
    // ------------------------------------------------------------------

    /// Storage mode of partition `p`.
    #[inline]
    pub fn partition_mode(&self, p: usize) -> StorageMode {
        self.frags[p]
            .as_ref()
            .map_or(StorageMode::Plain, Fragment::mode)
    }

    /// Encoded fragment of partition `p`, if compressed.
    #[inline]
    pub fn partition_fragment(&self, p: usize) -> Option<&Fragment<K>> {
        self.frags[p].as_ref()
    }

    /// Storage modes of every partition (reports, tests).
    pub fn storage_modes(&self) -> Vec<StorageMode> {
        (0..self.parts.len())
            .map(|p| self.partition_mode(p))
            .collect()
    }

    /// Encode partition `p`'s live values under `mode` (`Plain` reverts to
    /// plain slots). The plain slots remain the physical substrate — they
    /// are what the ripple machinery moves — but reads over a compressed
    /// partition scan only the encoded fragment.
    pub fn compress_partition(&mut self, p: usize, mode: StorageMode) {
        self.frags[p] = Fragment::encode(mode, self.partition_values(p));
    }

    /// Decode-on-write escape hatch: revert partition `p` to
    /// [`StorageMode::Plain`]. No-op for plain partitions.
    ///
    /// Dropping the fragment *is* the decode: the plain slots are the
    /// physical substrate and every slot-mutating path decompresses or
    /// invalidates before moving slots, so fragment and slots can never
    /// drift (debug builds verify; `validate_invariants` checks the same
    /// property on demand).
    pub fn decompress_partition(&mut self, p: usize) {
        if let Some(frag) = self.frags[p].take() {
            debug_assert!(
                !frag.preserves_slot_order() || {
                    let part = self.parts[p];
                    frag.decode() == self.data[part.start..part.live_end()]
                },
                "fragment drifted from partition {p}'s slots"
            );
        }
    }

    /// Number of partitions currently holding an encoded fragment.
    pub fn compressed_partition_count(&self) -> usize {
        self.frags.iter().filter(|f| f.is_some()).count()
    }

    /// Total encoded bytes across compressed partitions.
    pub fn encoded_bytes(&self) -> usize {
        self.frags
            .iter()
            .flatten()
            .map(Fragment::encoded_bytes)
            .sum()
    }

    /// Plain bytes of the live values held by compressed partitions — the
    /// denominator of the chunk's compression ratio.
    pub fn compressed_plain_bytes(&self) -> usize {
        self.frags
            .iter()
            .flatten()
            .map(|f| f.len() * K::WIDTH)
            .sum()
    }

    /// Smallest live value currently in the chunk, if any.
    pub fn min_value(&self) -> Option<K> {
        self.parts
            .iter()
            .filter(|p| p.len > 0)
            .map(|p| {
                *self.data[p.start..p.live_end()]
                    .iter()
                    .min()
                    .expect("non-empty")
            })
            .min()
    }

    /// Extract all live rows in sorted key order — used when the optimizer
    /// re-partitions a chunk (Fig. 10, step C).
    pub fn extract_live_sorted(&self) -> (Vec<K>, Vec<Vec<u32>>) {
        let mut keys = Vec::with_capacity(self.live);
        let mut positions = Vec::with_capacity(self.live);
        for p in &self.parts {
            for pos in p.start..p.live_end() {
                keys.push(self.data[pos]);
                positions.push(pos);
            }
        }
        let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
        perm.sort_by_key(|&i| keys[i as usize]);
        let sorted_keys: Vec<K> = perm.iter().map(|&i| keys[i as usize]).collect();
        let cols = (0..self.payloads.width())
            .map(|c| {
                perm.iter()
                    .map(|&i| self.payloads.get(c, positions[i as usize]))
                    .collect()
            })
            .collect();
        (sorted_keys, cols)
    }

    // ------------------------------------------------------------------
    // Persistence: raw physical state capture/restore
    // ------------------------------------------------------------------

    /// Raw physical slot array, stale ghost/tail contents included — the
    /// persistence encoder streams this directly so a snapshot needs no
    /// intermediate deep copy of the chunk.
    #[inline]
    pub fn raw_slots(&self) -> &[K] {
        &self.data
    }

    /// The chunk configuration (persistence).
    #[inline]
    pub fn chunk_config(&self) -> ChunkConfig {
        self.config
    }

    /// Capture the chunk's complete physical state for persistence: slots,
    /// partition metadata, zone maps, encoded fragments, payload columns
    /// and configuration. The capture is bit-exact — restoring it with
    /// [`PartitionedChunk::from_state`] reproduces the same layout without
    /// re-sorting, re-partitioning, or re-encoding anything.
    pub fn to_state(&self) -> ChunkState<K> {
        ChunkState {
            data: self.data.clone(),
            parts: self.parts.clone(),
            zones: self.zones.clone(),
            frags: self.frags.clone(),
            payload_cols: self.payloads.columns().to_vec(),
            layout: self.layout,
            config: self.config,
            live: self.live,
        }
    }

    /// Restore a chunk from a captured [`ChunkState`].
    ///
    /// Cheap structural length/consistency checks run unconditionally and
    /// surface [`StorageError::Corrupt`]; debug builds additionally run the
    /// full O(M) [`PartitionedChunk::validate_invariants`] sweep over the
    /// recovered chunk, also surfaced as `Corrupt` rather than a panic.
    /// The shallow partition index is the only piece rebuilt (it is derived
    /// metadata over the partition bounds).
    pub fn from_state(state: ChunkState<K>) -> Result<Self, StorageError> {
        let corrupt = |reason: String| StorageError::Corrupt { reason };
        let k = state.parts.len();
        if k == 0 {
            return Err(corrupt("chunk state has no partitions".into()));
        }
        if state.zones.len() != k || state.frags.len() != k {
            return Err(corrupt(format!(
                "parallel arrays disagree: {k} partitions, {} zones, {} fragments",
                state.zones.len(),
                state.frags.len()
            )));
        }
        let mut expected_start = state.parts[0].start;
        let mut live = 0usize;
        for (p, part) in state.parts.iter().enumerate() {
            if part.start != expected_start {
                return Err(corrupt(format!(
                    "partition {p} starts at {} but previous extent ended at {expected_start}",
                    part.start
                )));
            }
            expected_start = part.extent_end();
            live += part.len;
            if let Some(frag) = &state.frags[p] {
                if frag.len() != part.len {
                    return Err(corrupt(format!(
                        "partition {p} fragment holds {} values but {} are live",
                        frag.len(),
                        part.len
                    )));
                }
            }
        }
        if expected_start > state.data.len() {
            return Err(corrupt(format!(
                "partitions extend to slot {expected_start} but chunk holds {}",
                state.data.len()
            )));
        }
        if live != state.live {
            return Err(corrupt(format!(
                "live count {live} != recorded {}",
                state.live
            )));
        }
        for (c, col) in state.payload_cols.iter().enumerate() {
            if col.len() != state.data.len() {
                return Err(corrupt(format!(
                    "payload column {c} has {} slots, key column has {}",
                    col.len(),
                    state.data.len()
                )));
            }
        }
        let bounds: Vec<K> = state.parts.iter().map(|p| p.max).collect();
        let physical = state.data.len();
        let chunk = Self {
            data: state.data,
            parts: state.parts,
            zones: state.zones,
            frags: state.frags,
            index: PartitionIndex::new(bounds),
            payloads: PayloadSet::from_columns(state.payload_cols, physical),
            layout: state.layout,
            config: state.config,
            live: state.live,
        };
        if cfg!(debug_assertions) {
            chunk
                .validate_invariants()
                .map_err(|reason| corrupt(format!("recovered chunk invalid: {reason}")))?;
        }
        Ok(chunk)
    }

    // ------------------------------------------------------------------
    // Slot-transfer primitives (the ripple mechanics of §3 / Fig. 4)
    // ------------------------------------------------------------------

    /// Move one slot's row between physical positions, charging one random
    /// read and one random write (the unit step of every ripple).
    #[inline]
    pub(crate) fn move_slot(&mut self, from: usize, to: usize, cost: &mut OpCost) {
        self.data[to] = self.data[from];
        self.payloads.move_row(from, to);
        cost.random_reads += 1;
        cost.random_writes += 1;
    }

    /// Donor on the right gives one slot to partition `m`.
    ///
    /// `donor` is either a partition `j > m` holding at least one ghost
    /// slot, or `None` for the column tail. Every partition in `(m, j]`
    /// shifts right by one slot (one move each, Fig. 4a). Returns the hole
    /// position, which ends up exactly at `parts[m].extent_end()`; the
    /// caller either consumes it (insert) or books it as a ghost of `m`.
    pub(crate) fn pull_slot_from_right(
        &mut self,
        m: usize,
        donor: Option<usize>,
        cost: &mut OpCost,
    ) -> usize {
        debug_assert!(donor.is_none_or(|j| j > m));
        // Acquire the hole: the donor's first ghost slot (the one adjacent
        // to its live values, so the hole can exit through them), or the
        // first tail slot.
        let mut hole = if let Some(j) = donor {
            debug_assert!(self.parts[j].ghosts > 0, "right donor must have ghosts");
            self.parts[j].ghosts -= 1;
            self.parts[j].live_end()
        } else {
            debug_assert!(self.tail_free() > 0, "tail donor requires free capacity");
            self.parts.last().expect("non-empty").extent_end()
        };
        // Walk the hole left over partitions (m, j] (the donor included —
        // its live region must slide right past the slot it gave up); each
        // partition shifts right by one. A partition's first live value
        // moves to its first ghost slot when it has ghosts (keeping live
        // values contiguous) or straight into the traveling hole otherwise.
        let upper = donor.map_or(self.parts.len(), |j| j + 1);
        for t in (m + 1..upper).rev() {
            // The hole rotates this partition's live region: any encoded
            // fragment no longer mirrors the slot order. Decode-on-write.
            self.frags[t] = None;
            let part = self.parts[t];
            if part.len > 0 {
                let target = if part.ghosts > 0 {
                    part.live_end()
                } else {
                    hole
                };
                self.move_slot(part.start, target, cost);
            }
            // Even for an empty partition the extent shifts: the hole passes
            // through its (ghost) region for free.
            hole = part.start;
            self.parts[t].start += 1;
        }
        debug_assert_eq!(hole, self.parts[m].extent_end());
        hole
    }

    /// Donor on the left (`j < m`, with at least one ghost slot) gives one
    /// slot to partition `m`. Every partition in `[j+1, m)` shifts left by
    /// one. Returns the hole position `parts[m].start - 1`.
    pub(crate) fn pull_slot_from_left(
        &mut self,
        m: usize,
        donor: usize,
        cost: &mut OpCost,
    ) -> usize {
        debug_assert!(donor < m);
        debug_assert!(self.parts[donor].ghosts > 0, "left donor must have ghosts");
        // The donor's last ghost slot is already adjacent to the next
        // partition; ghost slots are interchangeable, so taking the last one
        // costs no move.
        self.parts[donor].ghosts -= 1;
        let mut hole = self.parts[donor].extent_end(); // post-decrement end
        for t in donor + 1..m {
            self.frags[t] = None; // slot order rotates; see pull_slot_from_right
            let part = self.parts[t];
            if part.len > 0 {
                // Last live value moves into the hole at `start - 1`; the
                // partition's ghost region (if any) slides left with it by
                // ejecting its right-most slot as the new traveling hole.
                self.move_slot(part.live_end() - 1, hole, cost);
            }
            hole = part.extent_end() - 1;
            self.parts[t].start -= 1;
        }
        debug_assert_eq!(hole + 1, self.parts[m].start);
        hole
    }

    /// Partition `m` has one surplus slot booked as its *last ghost*; push
    /// it out to the column tail (the dense-delete ripple of Fig. 4b).
    /// Every partition right of `m` shifts left by one.
    pub(crate) fn push_slot_to_tail(&mut self, m: usize, cost: &mut OpCost) {
        debug_assert!(self.parts[m].ghosts > 0);
        self.parts[m].ghosts -= 1;
        let mut hole = self.parts[m].extent_end();
        for t in m + 1..self.parts.len() {
            self.frags[t] = None; // slot order rotates; see pull_slot_from_right
            let part = self.parts[t];
            if part.len > 0 {
                self.move_slot(part.live_end() - 1, hole, cost);
            }
            hole = part.extent_end() - 1;
            self.parts[t].start -= 1;
        }
    }

    /// Locate the partition responsible for value `v` (shallow-index probe,
    /// §3). Charges one probe on `cost`.
    #[inline]
    pub(crate) fn locate(&self, v: K, cost: &mut OpCost) -> usize {
        cost.index_probes += 1;
        self.index.locate(v)
    }

    /// Find the nearest ghost donor for partition `m`: first scanning right
    /// (the paper ripples toward the end of the column), then left; `None`
    /// means "use the tail" (or fail if the tail is exhausted).
    pub(crate) fn nearest_donor(&self, m: usize) -> Option<DonorSide> {
        let right = self.parts[m + 1..]
            .iter()
            .position(|p| p.ghosts > 0)
            .map(|off| m + 1 + off);
        let left = self.parts[..m].iter().rposition(|p| p.ghosts > 0);
        match (right, left) {
            (Some(r), Some(l)) => {
                if r - m <= m - l {
                    Some(DonorSide::Right(r))
                } else {
                    Some(DonorSide::Left(l))
                }
            }
            (Some(r), None) => Some(DonorSide::Right(r)),
            (None, Some(l)) => Some(DonorSide::Left(l)),
            (None, None) => None,
        }
    }

    /// Widen partition `m`'s covering range to include `v`, updating the
    /// index when the upper bound grows.
    #[inline]
    pub(crate) fn widen_bounds(&mut self, m: usize, v: K) {
        let part = &mut self.parts[m];
        if v < part.min {
            part.min = v;
        }
        if v > part.max {
            part.max = v;
            self.index.update_bound(m, v);
        }
    }

    /// Number of logical blocks a partition's live region spans (cost unit
    /// of the model: a query pays for whole blocks, §4.4).
    #[inline]
    pub(crate) fn live_blocks(&self, p: usize) -> usize {
        let part = &self.parts[p];
        if part.len == 0 {
            return 0;
        }
        let vpb = self.layout.values_per_block();
        (part.live_end() - 1) / vpb - part.start / vpb + 1
    }

    // ------------------------------------------------------------------
    // Invariant checking (used heavily by tests)
    // ------------------------------------------------------------------

    /// Verify all structural invariants; returns a description of the first
    /// violation. Intended for tests and debug assertions — O(M).
    pub fn validate_invariants(&self) -> Result<(), String> {
        if self.parts.is_empty() {
            return Err("no partitions".into());
        }
        let mut expected_start = self.parts[0].start;
        let mut live = 0usize;
        for (p, part) in self.parts.iter().enumerate() {
            if part.start != expected_start {
                return Err(format!(
                    "partition {p} starts at {} but previous extent ended at {expected_start}",
                    part.start
                ));
            }
            expected_start = part.extent_end();
            live += part.len;
            for pos in part.start..part.live_end() {
                let v = self.data[pos];
                if !part.covers(v) {
                    return Err(format!(
                        "value {v} at slot {pos} outside partition {p} range [{}, {}]",
                        part.min, part.max
                    ));
                }
            }
            if p > 0 && self.parts[p - 1].max > part.max {
                return Err(format!("partition bounds not monotone at {p}"));
            }
            // Zone maps must cover every live value (tightness is a
            // performance property; covering is the correctness one).
            let zone = self.zones[p];
            if part.len == 0 {
                if !zone.is_empty() {
                    return Err(format!("partition {p} is empty but its zone is {zone:?}"));
                }
            } else {
                for pos in part.start..part.live_end() {
                    let v = self.data[pos];
                    if !zone.contains(v) {
                        return Err(format!(
                            "value {v} at slot {pos} outside partition {p} zone [{}, {}]",
                            zone.min, zone.max
                        ));
                    }
                }
            }
        }
        // Encoded fragments must mirror their partition's live values:
        // exactly (in slot order) for order-preserving codecs, as a sorted
        // multiset for RLE.
        for (p, frag) in self.frags.iter().enumerate() {
            let Some(frag) = frag else { continue };
            let part = &self.parts[p];
            if frag.len() != part.len {
                return Err(format!(
                    "partition {p} fragment holds {} values but {} are live",
                    frag.len(),
                    part.len
                ));
            }
            let live_slice = &self.data[part.start..part.live_end()];
            let decoded = frag.decode();
            if frag.preserves_slot_order() {
                if decoded != live_slice {
                    return Err(format!("partition {p} fragment out of sync with slots"));
                }
            } else {
                let mut a = decoded;
                a.sort_unstable();
                let mut b = live_slice.to_vec();
                b.sort_unstable();
                if a != b {
                    return Err(format!(
                        "partition {p} RLE fragment multiset differs from slots"
                    ));
                }
            }
        }
        if live != self.live {
            return Err(format!("live count {live} != recorded {}", self.live));
        }
        if expected_start > self.data.len() {
            return Err("partitions exceed physical capacity".into());
        }
        // Cross-partition separation: every live value of partition q must
        // be strictly greater than the (fixed) upper bound of partition
        // q−1, which is what routing by `locate` guarantees.
        for q in 1..self.parts.len() {
            let prev_bound = self.parts[q - 1].max;
            let part = &self.parts[q];
            for pos in part.start..part.live_end() {
                if self.data[pos] <= prev_bound {
                    return Err(format!(
                        "value {} in partition {q} not above previous bound {prev_bound}",
                        self.data[pos]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Complete physical state of a [`PartitionedChunk`], as captured by
/// [`PartitionedChunk::to_state`] for persistence and consumed by
/// [`PartitionedChunk::from_state`] on recovery. Everything is raw
/// physical state — including stale ghost/tail slot contents and the
/// encoded fragment bytes — so a round-trip is bit-exact and needs no
/// re-solve and no re-encode. The shallow partition index is deliberately
/// absent: it is derived metadata rebuilt on restore.
#[derive(Debug, Clone)]
pub struct ChunkState<K: ColumnValue> {
    /// Physical slots (capacity included; tail/ghost slots hold stale
    /// values exactly as in memory).
    pub data: Vec<K>,
    /// Partition metadata, physically contiguous.
    pub parts: Vec<PartitionMeta<K>>,
    /// Tight per-partition live min/max, parallel to `parts`.
    pub zones: Vec<ZoneMap<K>>,
    /// Per-partition encoded fragments (§6.2 storage modes), parallel to
    /// `parts`.
    pub frags: Vec<Option<Fragment<K>>>,
    /// Slot-aligned payload columns, each exactly `data.len()` long.
    pub payload_cols: Vec<Vec<u32>>,
    /// Block geometry.
    pub layout: BlockLayout,
    /// Chunk configuration (update policy, slack, ghost fetch block).
    pub config: ChunkConfig,
    /// Total live values across partitions.
    pub live: usize,
}

/// Which side a ghost donor was found on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DonorSide {
    /// Donor partition index right of the target.
    Right(usize),
    /// Donor partition index left of the target.
    Left(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_layout() -> BlockLayout {
        // 2 values per block.
        BlockLayout {
            block_bytes: 16,
            value_width: 8,
        }
    }

    fn build_chunk(values: Vec<u64>, sizes: &[usize], ghosts: &[usize]) -> PartitionedChunk<u64> {
        let spec = PartitionSpec::from_block_sizes(sizes);
        PartitionedChunk::build(
            values,
            &spec,
            tiny_layout(),
            &GhostPlan::from_counts(ghosts.to_vec()),
            ChunkConfig::default(),
        )
        .expect("build")
    }

    #[test]
    fn build_sorts_and_partitions() {
        let c = build_chunk(vec![8, 3, 1, 5, 7, 2, 4, 6], &[2, 2], &[0, 0]);
        assert_eq!(c.partition_count(), 2);
        assert_eq!(c.partition_values(0), &[1, 2, 3, 4]);
        assert_eq!(c.partition_values(1), &[5, 6, 7, 8]);
        assert_eq!(c.live_len(), 8);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn build_places_ghosts_between_partitions() {
        let c = build_chunk((1..=8).collect(), &[2, 2], &[2, 1]);
        assert_eq!(c.parts[0].start, 0);
        assert_eq!(c.parts[0].ghosts, 2);
        assert_eq!(c.parts[1].start, 6); // 4 live + 2 ghosts
        assert_eq!(c.ghost_total(), 3);
        c.validate_invariants().unwrap();
    }

    #[test]
    fn build_rejects_wrong_spec_width() {
        let spec = PartitionSpec::from_block_sizes(&[1]); // 1 block for 8 values
        let err = PartitionedChunk::build(
            (1u64..=8).collect(),
            &spec,
            tiny_layout(),
            &GhostPlan::none(1),
            ChunkConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::InvalidSpec { .. }));
    }

    #[test]
    fn build_rejects_ghost_plan_mismatch() {
        let spec = PartitionSpec::from_block_sizes(&[2, 2]);
        let err = PartitionedChunk::build(
            (1u64..=8).collect(),
            &spec,
            tiny_layout(),
            &GhostPlan::none(3),
            ChunkConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, StorageError::GhostPlanMismatch { .. }));
    }

    #[test]
    fn build_with_payloads_cosorts() {
        let spec = PartitionSpec::from_block_sizes(&[1, 1]);
        let c = PartitionedChunk::build_with_payloads(
            vec![40u64, 10, 30, 20],
            vec![vec![4, 1, 3, 2]],
            &spec,
            tiny_layout(),
            &GhostPlan::none(2),
            ChunkConfig::default(),
        )
        .unwrap();
        assert_eq!(c.partition_values(0), &[10, 20]);
        // Payload must follow its key.
        assert_eq!(c.payloads().get(0, c.parts[0].start), 1);
        assert_eq!(c.payloads().get(0, c.parts[0].start + 1), 2);
        assert_eq!(c.payloads().get(0, c.parts[1].start), 3);
    }

    #[test]
    fn pull_slot_from_tail_shifts_trailing_partitions() {
        let mut c = build_chunk((1..=8).collect(), &[1, 1, 1, 1], &[0, 0, 0, 0]);
        let mut cost = OpCost::default();
        let hole = c.pull_slot_from_right(1, None, &mut cost);
        // Partitions 2 and 3 each shifted right by one → 2 moves.
        assert_eq!(cost.random_writes, 2);
        assert_eq!(hole, c.parts[1].extent_end());
        // All live data preserved.
        let mut all: Vec<u64> = (0..4)
            .flat_map(|p| c.partition_values(p).to_vec())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (1..=8).collect::<Vec<u64>>());
        // Write the hole so invariants hold (value within partition 1's range).
        c.data[hole] = 4;
        c.parts[1].len += 1;
        c.live += 1;
        c.validate_invariants().unwrap();
    }

    #[test]
    fn pull_slot_from_right_ghost_donor() {
        let mut c = build_chunk((1..=8).collect(), &[1, 1, 1, 1], &[0, 0, 0, 3]);
        let mut cost = OpCost::default();
        let hole = c.pull_slot_from_right(0, Some(3), &mut cost);
        assert_eq!(c.parts[3].ghosts, 2);
        // Partitions 1, 2 and the donor's live region shift: 3 moves.
        assert_eq!(cost.random_writes, 3);
        assert_eq!(hole, c.parts[0].extent_end());
        let mut all: Vec<u64> = (0..4)
            .flat_map(|p| c.partition_values(p).to_vec())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn pull_slot_from_left_ghost_donor() {
        let mut c = build_chunk((1..=8).collect(), &[1, 1, 1, 1], &[2, 0, 0, 0]);
        let mut cost = OpCost::default();
        let hole = c.pull_slot_from_left(3, 0, &mut cost);
        assert_eq!(c.parts[0].ghosts, 1);
        // Partitions 1 and 2 shift left: 2 moves.
        assert_eq!(cost.random_writes, 2);
        assert_eq!(hole + 1, c.parts[3].start);
        let mut all: Vec<u64> = (0..4)
            .flat_map(|p| c.partition_values(p).to_vec())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (1..=8).collect::<Vec<u64>>());
    }

    #[test]
    fn push_slot_to_tail_restores_density() {
        let mut c = build_chunk((1..=8).collect(), &[1, 1, 1, 1], &[0, 0, 0, 0]);
        // Fabricate a surplus ghost in partition 1 by removing a value.
        let le = c.parts[1].live_end();
        c.data.copy_within(le - 1..le, c.parts[1].start); // drop one value
        c.parts[1].len -= 1;
        c.parts[1].ghosts += 1;
        c.live -= 1;
        let mut cost = OpCost::default();
        c.push_slot_to_tail(1, &mut cost);
        assert_eq!(cost.random_writes, 2); // partitions 2 and 3 shift left
        assert!(c.tail_free() > 0);
        assert_eq!(c.ghost_total(), 0);
        // Contiguity restored.
        for p in 0..3 {
            assert_eq!(c.parts[p].extent_end(), c.parts[p + 1].start);
        }
    }

    #[test]
    fn nearest_donor_prefers_closer_side() {
        let c = build_chunk((1..=8).collect(), &[1, 1, 1, 1], &[1, 0, 0, 1]);
        assert_eq!(c.nearest_donor(1), Some(DonorSide::Left(0)));
        assert_eq!(c.nearest_donor(2), Some(DonorSide::Right(3)));
        let c = build_chunk((1..=8).collect(), &[1, 1, 1, 1], &[0, 0, 0, 0]);
        assert_eq!(c.nearest_donor(1), None);
    }

    #[test]
    fn extract_live_sorted_round_trips() {
        let c = build_chunk(vec![5, 3, 8, 1, 7, 2, 6, 4], &[2, 2], &[1, 1]);
        let (keys, cols) = c.extract_live_sorted();
        assert_eq!(keys, (1..=8).collect::<Vec<u64>>());
        assert!(cols.is_empty());
    }

    #[test]
    fn live_blocks_counts_block_span() {
        let c = build_chunk((1..=8).collect(), &[2, 2], &[0, 0]);
        // 2 values per block, partitions of 4 values each → 2 blocks.
        assert_eq!(c.live_blocks(0), 2);
        assert_eq!(c.live_blocks(1), 2);
    }

    #[test]
    fn state_round_trip_is_bit_exact() {
        let mut c = build_chunk((1..=8).collect(), &[2, 2], &[2, 1]);
        c.compress_partition(0, crate::compress::StorageMode::For);
        let state = c.to_state();
        let r = PartitionedChunk::from_state(state).expect("restore");
        assert_eq!(r.data, c.data);
        assert_eq!(r.parts, c.parts);
        assert_eq!(r.zones, c.zones);
        assert_eq!(r.storage_modes(), c.storage_modes());
        assert_eq!(r.live_len(), c.live_len());
        r.validate_invariants().unwrap();
        // Restored index routes identically.
        for v in 0..=10u64 {
            let mut cost = OpCost::default();
            assert_eq!(r.locate(v, &mut cost), c.locate(v, &mut cost));
        }
    }

    #[test]
    fn from_state_rejects_corrupt_lengths() {
        let c = build_chunk((1..=8).collect(), &[2, 2], &[0, 0]);
        // Truncated slot array.
        let mut s = c.to_state();
        s.data.truncate(3);
        assert!(matches!(
            PartitionedChunk::from_state(s),
            Err(StorageError::Corrupt { .. })
        ));
        // Live-count mismatch.
        let mut s = c.to_state();
        s.live += 1;
        assert!(matches!(
            PartitionedChunk::from_state(s),
            Err(StorageError::Corrupt { .. })
        ));
        // Fragment length out of sync with its partition.
        let mut s = c.to_state();
        s.frags[0] =
            crate::kernels::Fragment::encode(crate::compress::StorageMode::For, &[1u64, 2, 3]);
        s.parts[0].len = 4; // still claims 4 live values
        assert!(matches!(
            PartitionedChunk::from_state(s),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn single_partition_constructor() {
        let c = PartitionedChunk::single_partition(
            vec![3u64, 1, 2],
            tiny_layout(),
            ChunkConfig::default(),
        )
        .unwrap();
        assert_eq!(c.partition_count(), 1);
        assert_eq!(c.live_len(), 3);
        c.validate_invariants().unwrap();
    }
}
