//! Secondary (payload) columns that mirror key-column movements.
//!
//! The HAP tables of the paper (§7.1) pair an 8-byte key column `a0` with
//! `p` 4-byte payload columns `a1..ap`. Range partitioning is driven by the
//! key column; whenever a ripple moves a key between slots, the same move
//! must be applied to every payload column so rows stay aligned.
//!
//! [`PayloadSet`] stores the payload columns slot-for-slot parallel to the
//! key column's physical slots and exposes the minimal move/set/read API
//! the chunk needs.

/// A set of fixed-width (`u32`) payload columns, slot-aligned with a key
/// column's physical storage.
#[derive(Debug, Clone, Default)]
pub struct PayloadSet {
    cols: Vec<Vec<u32>>,
}

impl PayloadSet {
    /// An empty payload set (key-only chunk).
    pub fn empty() -> Self {
        Self { cols: Vec::new() }
    }

    /// Build from already slot-aligned columns, padded to `physical` slots.
    ///
    /// # Panics
    /// Panics if any column is longer than `physical`.
    pub fn from_columns(mut cols: Vec<Vec<u32>>, physical: usize) -> Self {
        for c in &mut cols {
            assert!(c.len() <= physical, "payload column longer than chunk");
            c.resize(physical, 0);
        }
        Self { cols }
    }

    /// Number of payload columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.cols.len()
    }

    /// Whether this set stores any columns at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// Copy the row at slot `from` over the row at slot `to` (the ripple
    /// move primitive). The source slot's contents become stale, exactly
    /// like the key column's ghost slots.
    #[inline]
    pub fn move_row(&mut self, from: usize, to: usize) {
        for c in &mut self.cols {
            c[to] = c[from];
        }
    }

    /// Write a full row at slot `pos`.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the column count.
    #[inline]
    pub fn set_row(&mut self, pos: usize, row: &[u32]) {
        assert_eq!(row.len(), self.cols.len(), "payload arity mismatch");
        for (c, &v) in self.cols.iter_mut().zip(row) {
            c[pos] = v;
        }
    }

    /// Read one attribute.
    #[inline]
    pub fn get(&self, col: usize, pos: usize) -> u32 {
        self.cols[col][pos]
    }

    /// Gather a row into a fresh vector (used by point queries with
    /// projectivity `k`, HAP Q1).
    pub fn gather_row(&self, pos: usize, cols: &[usize]) -> Vec<u32> {
        cols.iter().map(|&c| self.cols[c][pos]).collect()
    }

    /// Sum the given columns over a contiguous slot range (the blind middle
    /// partitions of a range query, HAP Q3).
    pub fn sum_range(&self, cols: &[usize], range: std::ops::Range<usize>) -> u64 {
        let mut acc = 0u64;
        for &c in cols {
            // Tight per-column loop over the contiguous slice: this is the
            // vectorizable scan the paper's engine relies on.
            acc += self.cols[c][range.clone()]
                .iter()
                .map(|&v| u64::from(v))
                .sum::<u64>();
        }
        acc
    }

    /// Contiguous slice of one payload column (fused filter-aggregate
    /// kernels consume the key and payload lanes side by side).
    #[inline]
    pub fn column_slice(&self, col: usize, range: std::ops::Range<usize>) -> &[u32] {
        &self.cols[col][range]
    }

    /// Sum the given columns at scattered slot positions (filtered first /
    /// last partitions of a range query).
    pub fn sum_positions(&self, cols: &[usize], positions: &[usize]) -> u64 {
        let mut acc = 0u64;
        for &c in cols {
            let col = &self.cols[c];
            acc += positions.iter().map(|&p| u64::from(col[p])).sum::<u64>();
        }
        acc
    }

    /// The raw slot-aligned columns (snapshot serialization).
    #[inline]
    pub fn columns(&self) -> &[Vec<u32>] {
        &self.cols
    }

    /// Heap bytes resident for the payload columns (allocated capacity,
    /// not just live length — the tail slack is real memory too).
    pub fn resident_bytes(&self) -> usize {
        self.cols
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Grow the physical slot count (used when a chunk expands its tail).
    pub fn grow_to(&mut self, physical: usize) {
        for c in &mut self.cols {
            if c.len() < physical {
                c.resize(physical, 0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PayloadSet {
        PayloadSet::from_columns(vec![vec![1, 2, 3, 4], vec![10, 20, 30, 40]], 6)
    }

    #[test]
    fn from_columns_pads_to_physical() {
        let p = sample();
        assert_eq!(p.width(), 2);
        assert_eq!(p.get(0, 4), 0);
        assert_eq!(p.get(1, 5), 0);
    }

    #[test]
    fn move_row_copies_all_columns() {
        let mut p = sample();
        p.move_row(1, 3);
        assert_eq!(p.get(0, 3), 2);
        assert_eq!(p.get(1, 3), 20);
        // Source slot is stale but untouched.
        assert_eq!(p.get(0, 1), 2);
    }

    #[test]
    fn set_and_gather_row() {
        let mut p = sample();
        p.set_row(5, &[7, 70]);
        assert_eq!(p.gather_row(5, &[0, 1]), vec![7, 70]);
        assert_eq!(p.gather_row(5, &[1]), vec![70]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn set_row_checks_arity() {
        let mut p = sample();
        p.set_row(0, &[1]);
    }

    #[test]
    fn sums() {
        let p = sample();
        assert_eq!(p.sum_range(&[0], 0..4), 10);
        assert_eq!(p.sum_range(&[0, 1], 1..3), 2 + 3 + 20 + 30);
        assert_eq!(p.sum_positions(&[1], &[0, 3]), 50);
    }

    #[test]
    fn empty_set_is_noop() {
        let mut p = PayloadSet::empty();
        p.move_row(0, 1); // must not panic
        assert!(p.is_empty());
        assert_eq!(p.sum_range(&[], 0..0), 0);
    }
}
