//! Fixed-width column value abstraction.
//!
//! Casper (like the analytical engines it models, §1) stores every column as
//! a fixed-width array. The [`ColumnValue`] trait captures the minimal
//! contract the storage layer needs: totally ordered, copyable, with a
//! declared byte width (used to translate block sizes expressed in bytes
//! into block sizes expressed in values) and a lossless round-trip through
//! `u64` (used by the workload generators and the compression codecs).

/// A value that can be stored in a fixed-width column.
pub trait ColumnValue:
    Copy + Ord + Send + Sync + std::fmt::Debug + std::fmt::Display + Default + 'static
{
    /// Width of the encoded value in bytes (e.g. 8 for `u64`).
    const WIDTH: usize;

    /// Smallest representable value.
    const MIN_VALUE: Self;

    /// Largest representable value.
    const MAX_VALUE: Self;

    /// The unsigned lane type sharing this value's bit pattern — what the
    /// SIMD kernels actually scan (`u32` for `i32`, identity for unsigned).
    ///
    /// The load-bearing property: because the sign-flip of
    /// [`ColumnValue::to_ordered_u64`] is congruent to *adding* the sign
    /// bit mod 2^BITS, wrapping differences are identical in ordered space
    /// and raw-bits space (`ord(x) - ord(lo) ≡ bits(x) - bits(lo)`). Range
    /// windows therefore evaluate directly on raw-bit lanes with unsigned
    /// compares — no per-element order normalization.
    type Bits: crate::simd::SimdElem;

    /// Order-preserving injection into `u64`.
    ///
    /// For signed types this is the usual sign-flip encoding, so that
    /// `a <= b` iff `a.to_ordered_u64() <= b.to_ordered_u64()`.
    fn to_ordered_u64(self) -> u64;

    /// Inverse of [`ColumnValue::to_ordered_u64`].
    fn from_ordered_u64(v: u64) -> Self;

    /// This value's raw bit pattern.
    fn to_bits(self) -> Self::Bits;

    /// Inverse of [`ColumnValue::to_bits`].
    fn from_bits(bits: Self::Bits) -> Self;

    /// Reinterpret a lane of values as its raw-bits lane (zero-copy).
    fn lane_bits(lane: &[Self]) -> &[Self::Bits];
}

macro_rules! impl_unsigned_value {
    ($($t:ty),*) => {$(
        impl ColumnValue for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            type Bits = $t;

            #[inline]
            fn to_ordered_u64(self) -> u64 {
                self as u64
            }

            #[inline]
            fn from_ordered_u64(v: u64) -> Self {
                v as $t
            }

            #[inline]
            fn to_bits(self) -> Self::Bits {
                self
            }

            #[inline]
            fn from_bits(bits: Self::Bits) -> Self {
                bits
            }

            #[inline]
            fn lane_bits(lane: &[Self]) -> &[Self::Bits] {
                lane
            }
        }
    )*};
}

macro_rules! impl_signed_value {
    ($($t:ty => $ut:ty),*) => {$(
        impl ColumnValue for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const MIN_VALUE: Self = <$t>::MIN;
            const MAX_VALUE: Self = <$t>::MAX;
            type Bits = $ut;

            #[inline]
            fn to_ordered_u64(self) -> u64 {
                // Flip the sign bit: maps MIN..=MAX monotonically onto
                // 0..=unsigned MAX.
                (self as $ut ^ (1 << (<$t>::BITS - 1))) as u64
            }

            #[inline]
            fn from_ordered_u64(v: u64) -> Self {
                (v as $ut ^ (1 << (<$t>::BITS - 1))) as $t
            }

            #[inline]
            fn to_bits(self) -> Self::Bits {
                self as $ut
            }

            #[inline]
            fn from_bits(bits: Self::Bits) -> Self {
                bits as $t
            }

            #[inline]
            fn lane_bits(lane: &[Self]) -> &[Self::Bits] {
                // SAFETY: $t and $ut have identical size and alignment, and
                // every bit pattern is valid for both — a plain
                // reinterpretation, same as `<$t>::to_bits` element-wise.
                unsafe {
                    std::slice::from_raw_parts(lane.as_ptr().cast::<$ut>(), lane.len())
                }
            }
        }
    )*};
}

impl_unsigned_value!(u16, u32, u64);
impl_signed_value!(i32 => u32, i64 => u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_match_native_sizes() {
        assert_eq!(<u16 as ColumnValue>::WIDTH, 2);
        assert_eq!(<u32 as ColumnValue>::WIDTH, 4);
        assert_eq!(<u64 as ColumnValue>::WIDTH, 8);
        assert_eq!(<i32 as ColumnValue>::WIDTH, 4);
        assert_eq!(<i64 as ColumnValue>::WIDTH, 8);
    }

    #[test]
    fn unsigned_round_trip() {
        for v in [0u64, 1, 42, u64::MAX / 2, u64::MAX] {
            assert_eq!(u64::from_ordered_u64(v.to_ordered_u64()), v);
        }
        for v in [0u32, 7, u32::MAX] {
            assert_eq!(u32::from_ordered_u64(v.to_ordered_u64()), v);
        }
    }

    #[test]
    fn signed_round_trip_and_order() {
        let samples = [i64::MIN, -5, -1, 0, 1, 5, i64::MAX];
        for v in samples {
            assert_eq!(i64::from_ordered_u64(v.to_ordered_u64()), v);
        }
        for w in samples.windows(2) {
            assert!(
                w[0].to_ordered_u64() < w[1].to_ordered_u64(),
                "ordering not preserved for {} < {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn signed_i32_order_preserved() {
        let samples = [i32::MIN, -100, 0, 100, i32::MAX];
        for w in samples.windows(2) {
            assert!(w[0].to_ordered_u64() < w[1].to_ordered_u64());
        }
    }

    #[test]
    fn raw_bits_round_trip_and_wrapped_diff_matches_ordered() {
        // The invariant the SIMD window kernels rely on: wrapping
        // differences agree between ordered space and raw-bits space.
        let samples = [i32::MIN, -100, -1, 0, 1, 100, i32::MAX];
        for &a in &samples {
            assert_eq!(i32::from_bits(a.to_bits()), a);
            for &b in &samples {
                let ord_diff = a.to_ordered_u64().wrapping_sub(b.to_ordered_u64()) as u32;
                let bit_diff = a.to_bits().wrapping_sub(b.to_bits());
                assert_eq!(ord_diff, bit_diff, "a={a} b={b}");
            }
        }
        let lane = [-3i32, 7, i32::MIN];
        let bits = i32::lane_bits(&lane);
        assert_eq!(bits.len(), 3);
        for (v, &b) in lane.iter().zip(bits) {
            assert_eq!(v.to_bits(), b);
        }
        let unsigned = [5u64, u64::MAX];
        assert_eq!(u64::lane_bits(&unsigned), &unsigned);
    }

    #[test]
    fn min_max_constants_are_extremes() {
        assert_eq!(<u64 as ColumnValue>::MIN_VALUE, 0);
        assert_eq!(<i64 as ColumnValue>::MIN_VALUE, i64::MIN);
        assert_eq!(<i64 as ColumnValue>::MAX_VALUE, i64::MAX);
    }
}
