//! Cross-crate integration tests: workload generation → engine execution →
//! layout optimization → verification, spanning all five crates through
//! the facade.

use casper::core::solver::SolverConstraints;
use casper::core::CostConstants;
use casper::engine::optimize::{capture_per_chunk, optimize_table, OptimizeOptions};
use casper::engine::{EngineConfig, LayoutMode, Table};
use casper::workload::{HapQuery, HapSchema, Mix, MixKind};

fn small_config(mode: LayoutMode) -> EngineConfig {
    let mut c = EngineConfig::small(mode);
    c.chunk_values = 2048;
    c
}

/// A brute-force logical reference model of the HAP table.
struct Reference {
    rows: Vec<(u64, Vec<u32>)>,
}

impl Reference {
    fn load(gen: &casper::workload::WorkloadGenerator) -> Self {
        let keys = gen.initial_keys();
        let cols = gen.initial_payload_columns();
        let rows = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, cols.iter().map(|c| c[i]).collect()))
            .collect();
        Self { rows }
    }

    fn execute(&mut self, q: &HapQuery) -> u64 {
        match q {
            HapQuery::Q1 { v, .. } => self.rows.iter().filter(|(k, _)| k == v).count() as u64,
            HapQuery::Q2 { vs, ve } => self
                .rows
                .iter()
                .filter(|(k, _)| (*vs..*ve).contains(k))
                .count() as u64,
            HapQuery::Q3 { vs, ve, k } => self
                .rows
                .iter()
                .filter(|(key, _)| (*vs..*ve).contains(key))
                .map(|(_, row)| row[..*k].iter().map(|&v| u64::from(v)).sum::<u64>())
                .sum(),
            HapQuery::Q4 { key, payload } => {
                self.rows.push((*key, payload.clone()));
                1
            }
            HapQuery::Q5 { v } => {
                let before = self.rows.len();
                self.rows.retain(|(k, _)| k != v);
                (before - self.rows.len()) as u64
            }
            HapQuery::Q6 { v, vnew } => match self.rows.iter_mut().find(|(k, _)| k == v) {
                Some(row) => {
                    row.0 = *vnew;
                    1
                }
                None => 0,
            },
        }
    }
}

#[test]
fn every_mode_matches_the_reference_model() {
    let mix = Mix::new(MixKind::HybridPointSkewed, HapSchema::narrow(), 4096);
    let queries = mix.generate(600, 2024);
    for mode in LayoutMode::all() {
        let mut table = Table::load_from_generator(mix.generator(), small_config(mode));
        let mut reference = Reference::load(mix.generator());
        for (i, q) in queries.iter().enumerate() {
            let got = table.execute(q).expect("execute").result.scalar();
            let want = reference.execute(q);
            assert_eq!(got, want, "{mode:?} diverged at query {i}: {q:?}");
        }
        assert_eq!(table.len(), reference.rows.len(), "{mode:?} row count");
    }
}

#[test]
fn optimized_layout_matches_reference_under_continued_writes() {
    let mix = Mix::new(MixKind::UpdateOnlySkewed, HapSchema::narrow(), 4096);
    let mut table = Table::load_from_generator(mix.generator(), small_config(LayoutMode::Casper));
    let mut reference = Reference::load(mix.generator());
    // Train and re-layout mid-stream, then keep writing.
    let warm = mix.generate(300, 1);
    for q in &warm {
        let got = table.execute(q).expect("warm").result.scalar();
        let want = reference.execute(q);
        assert_eq!(got, want);
    }
    let sample = mix.generate(500, 2);
    optimize_table(&mut table, &sample, &OptimizeOptions::default());
    let cont = mix.generate(400, 3);
    for (i, q) in cont.iter().enumerate() {
        let got = table.execute(q).expect("cont").result.scalar();
        let want = reference.execute(q);
        assert_eq!(got, want, "diverged at post-optimize query {i}: {q:?}");
    }
}

#[test]
fn capture_covers_all_chunks_of_a_real_table() {
    let mix = Mix::new(MixKind::ReadOnlyUniform, HapSchema::narrow(), 8192);
    let table = Table::load_from_generator(mix.generator(), small_config(LayoutMode::Casper));
    assert!(table.column().chunk_count() >= 4);
    let sample = mix.generate(2000, 5);
    let fms = capture_per_chunk(&table, &sample);
    assert_eq!(fms.len(), table.column().chunk_count());
    // Uniform reads must leave mass in every chunk.
    for (i, fm) in fms.iter().enumerate() {
        assert!(
            fm.total_mass() > 0.0,
            "chunk {i} received no captured accesses"
        );
        fm.validate().expect("captured model is valid");
    }
}

#[test]
fn sla_constrained_optimization_bounds_partitions() {
    let mix = Mix::new(MixKind::SlaHybrid, HapSchema::narrow(), 4096);
    let mut table = Table::load_from_generator(mix.generator(), small_config(LayoutMode::Casper));
    let sample = mix.generate(400, 11);
    let opts = OptimizeOptions {
        constants: CostConstants::paper(),
        constraints: SolverConstraints {
            max_partitions: Some(3),
            max_partition_blocks: None,
        },
        ghost_budget_frac: 0.01,
        fairness_cap: false,
        threads: 2,
        ..OptimizeOptions::default()
    };
    let report = optimize_table(&mut table, &sample, &opts);
    for c in &report.chunks {
        assert!(c.partitions <= 3, "chunk {} exceeded the SLA cap", c.chunk);
    }
    // The table still answers correctly.
    let (rows, _) = table.column().q1_point(2048, &[0]).unwrap();
    assert_eq!(rows.len(), 1);
}

#[test]
fn multi_column_q6_analog_consistent_across_modes() {
    let mix = Mix::new(MixKind::HybridRangeSkewed, HapSchema::narrow(), 4096);
    let mut reference: Option<u64> = None;
    for mode in LayoutMode::all() {
        let table = Table::load_from_generator(mix.generator(), small_config(mode));
        let out = table
            .multi_column_sum(1000, 5000, &[0, 1], 2, 0, 50_000)
            .unwrap();
        let sum = out.result.scalar();
        match reference {
            None => reference = Some(sum),
            Some(want) => assert_eq!(sum, want, "{mode:?} multi-column sum diverged"),
        }
    }
}
