//! Integration tests for snapshot isolation across the facade: concurrent
//! logical transactions over a real HAP table (§6.1).

use casper::engine::{EngineConfig, LayoutMode, Table, TxnError, TxnManager};
use casper::workload::{HapSchema, KeyDist, WorkloadGenerator};

fn table() -> Table {
    let gen = WorkloadGenerator::new(HapSchema::narrow(), 4096, KeyDist::Uniform);
    let mut config = EngineConfig::small(LayoutMode::Casper);
    config.chunk_values = 2048;
    Table::load_from_generator(&gen, config)
}

#[test]
fn long_running_analytics_see_a_stable_snapshot() {
    // The §6.1 scenario: a long-running analytical query must not observe
    // the short transactions that commit while it runs.
    let mut t = table();
    let mgr = TxnManager::new();
    let analyst = mgr.begin();
    let before = mgr.range_count(&analyst, &t, 0, u64::MAX).unwrap();
    // A burst of short transactions commits mid-analysis.
    for i in 0..50u64 {
        let mut w = mgr.begin();
        mgr.buffer_insert(&mut w, &mut t, 100_001 + i * 2, vec![0; 15]);
        w.delete(i * 2);
        mgr.commit(w, &mut t).expect("short txn");
    }
    // The analyst's counts are unchanged at its snapshot...
    assert_eq!(mgr.range_count(&analyst, &t, 0, u64::MAX).unwrap(), before);
    assert_eq!(mgr.point_count(&analyst, &t, 0).unwrap(), 1);
    assert_eq!(mgr.point_count(&analyst, &t, 100_001).unwrap(), 0);
    // ...while a fresh snapshot sees all fifty commits.
    let fresh = mgr.begin();
    assert_eq!(mgr.range_count(&fresh, &t, 0, u64::MAX).unwrap(), before);
    assert_eq!(mgr.point_count(&fresh, &t, 0).unwrap(), 0);
    assert_eq!(mgr.point_count(&fresh, &t, 100_001).unwrap(), 1);
}

#[test]
fn write_conflicts_keep_exactly_one_winner() {
    let mut t = table();
    let mgr = TxnManager::new();
    let mut a = mgr.begin();
    let mut b = mgr.begin();
    a.update(500, 501);
    b.update(500, 503);
    assert!(mgr.commit(a, &mut t).is_ok());
    assert!(matches!(
        mgr.commit(b, &mut t),
        Err(TxnError::Conflict { key: 500 })
    ));
    let fresh = mgr.begin();
    assert_eq!(mgr.point_count(&fresh, &t, 501).unwrap(), 1);
    assert_eq!(mgr.point_count(&fresh, &t, 503).unwrap(), 0);
    assert_eq!(mgr.point_count(&fresh, &t, 500).unwrap(), 0);
}

#[test]
fn serial_commit_chain_is_linearizable() {
    let mut t = table();
    let mgr = TxnManager::new();
    // Move one row through a chain of keys; each txn begins after the
    // previous commit, so all succeed.
    let mut key = 600u64;
    for step in 0..10u64 {
        let next = 700_001 + step * 2;
        let mut w = mgr.begin();
        w.update(key, next);
        mgr.commit(w, &mut t).expect("chain txn");
        key = next;
    }
    let fresh = mgr.begin();
    assert_eq!(mgr.point_count(&fresh, &t, 600).unwrap(), 0);
    assert_eq!(mgr.point_count(&fresh, &t, key).unwrap(), 1);
    assert_eq!(mgr.log_len(), 10);
}

#[test]
fn aborted_work_leaves_only_ghost_prefetches() {
    let mut t = table();
    let mgr = TxnManager::new();
    let len_before = t.len();
    let mut w = mgr.begin();
    mgr.buffer_insert(&mut w, &mut t, 777, vec![1; 15]);
    w.delete(100);
    w.update(200, 201);
    mgr.abort(w);
    // Logical state unchanged.
    assert_eq!(t.len(), len_before);
    let fresh = mgr.begin();
    assert_eq!(mgr.point_count(&fresh, &t, 777).unwrap(), 0);
    assert_eq!(mgr.point_count(&fresh, &t, 100).unwrap(), 1);
    assert_eq!(mgr.point_count(&fresh, &t, 200).unwrap(), 1);
}
