//! Seeded multi-threaded reader/writer stress test for the snapshot read
//! path.
//!
//! One writer thread applies *count-preserving* write batches through the
//! chunk-parallel batch path (`Table::execute_batch` →
//! `apply_write_batch`, which publishes exactly once per batch) while N
//! reader threads hammer `TableReader` handles. Because every batch pairs
//! one insert with one delete (plus a count-neutral key update), a reader
//! that pins any *published* snapshot must count exactly the invariant
//! number of rows. Observing the invariant ±1 would mean a torn batch —
//! a snapshot published between the insert and the delete — which the
//! single-publish-per-batch protocol forbids.
//!
//! Parameterized by environment for the CI `concurrency-smoke` matrix:
//!
//! - `CASPER_STRESS_THREADS` — reader thread count (default 4)
//! - `CASPER_STRESS_SEEDS`   — comma-separated RNG seeds (default "1,2")
//! - `CASPER_STRESS_BATCHES` — write batches per seed/mode (default 60)

use casper::engine::{EngineConfig, LayoutMode, Table};
use casper::workload::{HapQuery, HapSchema};
use rand::prelude::*;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Base rows: even keys only, so every odd key is guaranteed absent and
/// the writer can mint fresh odd keys without colliding with the fixture.
const BASE_ROWS: usize = 4_000;
/// Odd keys pre-inserted before readers start; the count invariant is
/// `BASE_ROWS + EXTRA_KEYS` at every published snapshot.
const EXTRA_KEYS: usize = 8;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_seeds() -> Vec<u64> {
    std::env::var("CASPER_STRESS_SEEDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2])
}

fn build_table(mode: LayoutMode) -> Table {
    let schema = HapSchema::narrow();
    let keys: Vec<u64> = (0..BASE_ROWS as u64).map(|i| i * 2).collect();
    let payload_cols: Vec<Vec<u32>> = (0..schema.payload_cols)
        .map(|c| {
            keys.iter()
                .map(|&k| (k as u32).wrapping_mul(c as u32 + 1))
                .collect()
        })
        .collect();
    let mut config = EngineConfig::small(mode);
    config.chunk_values = 512; // many chunks => cross-chunk batches
    Table::load(schema, keys, payload_cols, config)
}

/// Mint fresh odd keys above the base key range: unique by construction
/// and never present in the even-keyed fixture.
struct KeyMint(u64);

impl KeyMint {
    fn new() -> Self {
        Self(2 * BASE_ROWS as u64 + 1)
    }
    fn next(&mut self) -> u64 {
        let k = self.0;
        self.0 += 2;
        k
    }
}

/// Run one seeded stress round for one layout mode; panics (failing the
/// test) if any reader ever observes a row count other than the invariant.
fn stress_mode(mode: LayoutMode, seed: u64, readers: usize, batches: usize) {
    let mut table = build_table(mode);
    let schema = table.schema();
    let mut mint = KeyMint::new();
    let mut extras: VecDeque<u64> = VecDeque::new();

    // Pre-insert the floating odd keys serially, before any reader exists.
    for _ in 0..EXTRA_KEYS {
        let k = mint.next();
        table
            .execute(&HapQuery::Q4 {
                key: k,
                payload: schema.payload_row(k),
            })
            .expect("seed insert");
        extras.push_back(k);
    }
    let invariant = (BASE_ROWS + EXTRA_KEYS) as u64;

    let reader = table.reader();
    let stop = AtomicBool::new(false);
    let observations = AtomicU64::new(0);
    let mut rng = StdRng::seed_from_u64(seed);

    std::thread::scope(|scope| {
        for _ in 0..readers {
            let handle = reader.clone();
            let stop = &stop;
            let observations = &observations;
            scope.spawn(move || {
                let mut last_version = handle.version();
                while !stop.load(Ordering::Relaxed) {
                    // Each pin must see a fully published batch: the
                    // paired insert+delete keeps the count invariant.
                    let out = handle
                        .execute(&HapQuery::Q2 {
                            vs: 0,
                            ve: u64::MAX,
                        })
                        .expect("snapshot count");
                    assert_eq!(
                        out.result.scalar(),
                        invariant,
                        "reader observed a torn write batch ({mode:?}, seed {seed})"
                    );
                    // A single pinned snapshot must be internally stable.
                    let snap = handle.pin();
                    let (a, _) = snap.q2_count(0, u64::MAX).expect("pinned count");
                    let (b, _) = snap.q2_count(0, u64::MAX).expect("pinned recount");
                    assert_eq!(a, b, "pinned snapshot changed underneath a reader");
                    // Publish counter is monotone.
                    let v = handle.version();
                    assert!(v >= last_version, "publish version went backwards");
                    last_version = v;
                    observations.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // Don't start writing until every reader has observed at least
        // one snapshot — otherwise a fast writer drains its batch budget
        // before the OS even schedules the reader threads and the test
        // exercises no actual concurrency.
        while observations.load(Ordering::Relaxed) < readers as u64 {
            std::thread::yield_now();
        }

        // Writer: every batch is count-neutral (one insert, one delete,
        // one key update), so only the never-published mid-batch states
        // violate the invariant.
        for _ in 0..batches {
            let fresh = mint.next();
            let doomed_idx: usize = rng.gen_range(0..extras.len());
            let doomed = extras.remove(doomed_idx).unwrap();
            let moved_idx: usize = rng.gen_range(0..extras.len());
            let moved_to = mint.next();
            let moved_from = extras[moved_idx];
            extras[moved_idx] = moved_to;
            extras.push_back(fresh);

            let batch = [
                HapQuery::Q4 {
                    key: fresh,
                    payload: schema.payload_row(fresh),
                },
                HapQuery::Q6 {
                    v: moved_from,
                    vnew: moved_to,
                },
                HapQuery::Q5 { v: doomed },
            ];
            let outs = table.execute_batch(&batch).expect("write batch");
            assert_eq!(outs[0].result.scalar(), 1, "insert applied");
            assert_eq!(outs[1].result.scalar(), 1, "update moved one row");
            assert_eq!(outs[2].result.scalar(), 1, "delete drained one row");
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        observations.load(Ordering::Relaxed) > 0,
        "readers never got to observe a snapshot"
    );
    // The writer's own view agrees once the dust settles.
    let out = table
        .execute(&HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        })
        .expect("final count");
    assert_eq!(out.result.scalar(), invariant);
}

#[test]
fn readers_never_observe_torn_batches() {
    let readers = env_usize("CASPER_STRESS_THREADS", 4);
    let batches = env_usize("CASPER_STRESS_BATCHES", 60);
    for seed in env_seeds() {
        for mode in LayoutMode::all() {
            stress_mode(mode, seed, readers, batches);
        }
    }
}

/// Readers pinned *before* a batch keep their pre-batch view; a reader
/// handle re-pinned *after* the batch sees it in full.
#[test]
fn pinned_snapshot_is_stable_while_writer_advances() {
    let mut table = build_table(LayoutMode::Casper);
    let schema = table.schema();
    let reader = table.reader();

    let before = reader.pin();
    let v0 = reader.version();
    let key = 2 * BASE_ROWS as u64 + 1; // odd: absent from the fixture
    table
        .execute_batch(&[HapQuery::Q4 {
            key,
            payload: schema.payload_row(key),
        }])
        .expect("insert batch");

    // The old pin still answers from the pre-batch world...
    let (n_before, _) = before.q2_count(0, u64::MAX).unwrap();
    assert_eq!(n_before, BASE_ROWS as u64);
    let (rows, _) = before.q1_point(key, &[0]).unwrap();
    assert!(rows.is_empty(), "old pin must not see the new row");

    // ...while a fresh pin sees the whole batch, and the version ticked.
    let after = reader.pin();
    let (n_after, _) = after.q2_count(0, u64::MAX).unwrap();
    assert_eq!(n_after, BASE_ROWS as u64 + 1);
    assert!(reader.version() > v0, "publish must tick the version");
}
