//! Property-based model test at the engine level: every layout mode,
//! driven by arbitrary HAP query interleavings over a payload-carrying
//! table, must agree with a naive reference model — including payload
//! contents, which exercises the ripple mirroring across all columns.

use casper::engine::{EngineConfig, LayoutMode, Table};
use casper::workload::{HapQuery, HapSchema};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Act {
    Point(u16),
    Range(u16, u16),
    Sum(u16, u16),
    Insert(u16),
    Delete(u16),
    Update(u16, u16),
}

fn act() -> impl Strategy<Value = Act> {
    prop_oneof![
        any::<u16>().prop_map(Act::Point),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Act::Range(a.min(b), a.max(b))),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Act::Sum(a.min(b), a.max(b))),
        any::<u16>().prop_map(Act::Insert),
        any::<u16>().prop_map(Act::Delete),
        (any::<u16>(), any::<u16>()).prop_map(|(a, b)| Act::Update(a, b)),
    ]
}

fn to_query(a: &Act, schema: HapSchema) -> HapQuery {
    match *a {
        Act::Point(v) => HapQuery::Q1 {
            v: u64::from(v),
            k: 3,
        },
        Act::Range(a, b) => HapQuery::Q2 {
            vs: u64::from(a),
            ve: u64::from(b) + 1,
        },
        Act::Sum(a, b) => HapQuery::Q3 {
            vs: u64::from(a),
            ve: u64::from(b) + 1,
            k: 2,
        },
        Act::Insert(v) => HapQuery::Q4 {
            key: u64::from(v),
            payload: schema.payload_row(u64::from(v)),
        },
        Act::Delete(v) => HapQuery::Q5 { v: u64::from(v) },
        Act::Update(a, b) => HapQuery::Q6 {
            v: u64::from(a),
            vnew: u64::from(b),
        },
    }
}

/// Reference: a plain Vec of (key, payload) rows.
fn reference_execute(rows: &mut Vec<(u64, Vec<u32>)>, q: &HapQuery) -> u64 {
    match q {
        HapQuery::Q1 { v, .. } => rows.iter().filter(|(k, _)| k == v).count() as u64,
        HapQuery::Q2 { vs, ve } => {
            rows.iter().filter(|(k, _)| (*vs..*ve).contains(k)).count() as u64
        }
        HapQuery::Q3 { vs, ve, k } => rows
            .iter()
            .filter(|(key, _)| (*vs..*ve).contains(key))
            .map(|(_, p)| p[..*k].iter().map(|&x| u64::from(x)).sum::<u64>())
            .sum(),
        HapQuery::Q4 { key, payload } => {
            rows.push((*key, payload.clone()));
            1
        }
        HapQuery::Q5 { v } => {
            let n = rows.len();
            rows.retain(|(k, _)| k != v);
            (n - rows.len()) as u64
        }
        HapQuery::Q6 { v, vnew } => match rows.iter_mut().find(|(k, _)| k == v) {
            Some(r) => {
                r.0 = *vnew;
                1
            }
            None => 0,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_modes_agree_with_reference(
        initial in proptest::collection::vec(any::<u16>(), 32..200),
        acts in proptest::collection::vec(act(), 1..60),
        mode_idx in 0usize..6,
    ) {
        let schema = HapSchema::narrow();
        let keys: Vec<u64> = initial.iter().map(|&k| u64::from(k)).collect();
        let payload_cols: Vec<Vec<u32>> = (0..schema.payload_cols)
            .map(|c| keys.iter().map(|&k| schema.payload_row(k)[c]).collect())
            .collect();
        let mode = LayoutMode::all()[mode_idx];
        let mut config = EngineConfig::small(mode);
        config.chunk_values = 64; // force many chunks
        config.capacity_slack = 1.0;
        let mut table = Table::load(schema, keys.clone(), payload_cols, config);
        let mut reference: Vec<(u64, Vec<u32>)> =
            keys.iter().map(|&k| (k, schema.payload_row(k))).collect();
        for (i, a) in acts.iter().enumerate() {
            let q = to_query(a, schema);
            let got = table.execute(&q).expect("execute").result.scalar();
            let want = reference_execute(&mut reference, &q);
            prop_assert_eq!(got, want, "{:?} diverged at act {} ({:?})", mode, i, q);
        }
        prop_assert_eq!(table.len(), reference.len());
    }
}

#[test]
fn wide_table_160_columns_round_trips() {
    let schema = HapSchema::wide();
    assert_eq!(schema.total_cols(), 160);
    let keys: Vec<u64> = (0..2048u64).map(|i| i * 2).collect();
    let payload_cols: Vec<Vec<u32>> = (0..schema.payload_cols)
        .map(|c| keys.iter().map(|&k| schema.payload_row(k)[c]).collect())
        .collect();
    for mode in [
        LayoutMode::Casper,
        LayoutMode::StateOfArt,
        LayoutMode::Sorted,
    ] {
        let mut config = EngineConfig::small(mode);
        config.chunk_values = 1024;
        let mut table = Table::load(schema, keys.clone(), payload_cols.clone(), config);
        // Project deep columns on a point read.
        let out = table.execute(&HapQuery::Q1 { v: 100, k: 159 }).expect("q1");
        if let casper::engine::QueryResult::Rows(rows) = out.result {
            assert_eq!(rows.len(), 1, "{mode:?}");
            assert_eq!(rows[0], schema.payload_row(100)[..159].to_vec(), "{mode:?}");
        } else {
            panic!("wrong result kind");
        }
        // Ripple a row across partitions and check all 159 columns follow.
        table
            .execute(&HapQuery::Q6 { v: 100, vnew: 3999 })
            .expect("q6");
        let out = table
            .execute(&HapQuery::Q1 { v: 3999, k: 159 })
            .expect("q1 after move");
        if let casper::engine::QueryResult::Rows(rows) = out.result {
            assert_eq!(rows.len(), 1, "{mode:?}");
            assert_eq!(
                rows[0],
                schema.payload_row(100)[..159].to_vec(),
                "{mode:?}: payload must follow the key through the ripple"
            );
        } else {
            panic!("wrong result kind");
        }
    }
}
