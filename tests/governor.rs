//! Resource-governor integration tests: memory-budgeted eviction with
//! bit-exact rehydration, deadline/cancellation mid-scan, load shedding
//! under admission control, and panic isolation — the four guarantees of
//! PR 9's serving-survival layer.
//!
//! The concurrency stress follows the `tests/concurrency.rs` pattern and
//! is parameterized by environment for the CI `governor-smoke` matrix:
//!
//! - `CASPER_STRESS_THREADS` — reader thread count (default 4)
//! - `CASPER_STRESS_SEEDS`   — comma-separated RNG seeds (default "1,2")
//! - `CASPER_GOV_ROUNDS`     — governed queries per seed (default 150)

use casper::engine::{
    CancelToken, EngineConfig, Governor, GovernorConfig, LayoutMode, QueryCtx, QueryError,
    QueryResult, Table,
};
use casper::persist::{DurableOptions, DurableTable, PersistError};
use casper::storage::StorageError;
use casper::workload::{HapQuery, HapSchema};
use rand::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CHUNK_VALUES: usize = 64;
const CHUNKS: usize = 8;
/// Even keys 0, 2, …: odd keys are guaranteed absent, so tests can mint
/// fresh keys without colliding with the fixture.
const ROWS: u64 = (CHUNK_VALUES * CHUNKS) as u64;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn env_seeds() -> Vec<u64> {
    std::env::var("CASPER_STRESS_SEEDS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<u64>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2])
}

fn test_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn schema() -> HapSchema {
    HapSchema { payload_cols: 2 }
}

fn payload_row(key: u64) -> Vec<u32> {
    vec![(key % 251) as u32, (key % 83) as u32]
}

fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::small(LayoutMode::Casper);
    config.chunk_values = CHUNK_VALUES;
    config.threads = 1;
    config
}

fn seed_table() -> Table {
    let keys: Vec<u64> = (0..ROWS).map(|i| i * 2).collect();
    let cols: Vec<Vec<u32>> = (0..2)
        .map(|c| keys.iter().map(|&k| payload_row(k)[c]).collect())
        .collect();
    Table::load(schema(), keys, cols, engine_config())
}

fn point(key: u64) -> HapQuery {
    HapQuery::Q1 { v: key, k: 2 }
}

fn count_all() -> HapQuery {
    HapQuery::Q2 {
        vs: 0,
        ve: u64::MAX,
    }
}

fn expect_rows(out: &casper::engine::QueryOutput, key: u64) {
    match &out.result {
        QueryResult::Rows(rows) => {
            assert_eq!(rows.len(), 1, "key {key} must resolve to one row");
            assert_eq!(rows[0], payload_row(key), "payload mismatch for key {key}");
        }
        other => panic!("expected rows for key {key}, got {other:?}"),
    }
}

/// Create a durable table at `dir`, drop it, and return the fully
/// hydrated working-set size in bytes (the budget baseline).
fn persist_fixture(dir: &std::path::Path) -> usize {
    {
        let t = DurableTable::create_from_table(dir, seed_table(), DurableOptions::default())
            .expect("create");
        drop(t);
    }
    let mut probe = DurableTable::open(dir, DurableOptions::default()).expect("probe open");
    probe.hydrate_all().expect("probe hydrate");
    let working_set = probe.resident_bytes();
    assert!(
        working_set > 0,
        "hydrated table must account resident bytes"
    );
    working_set
}

/// Tentpole acceptance: with a budget at ~50% of the working set, a full
/// key sweep (which hydrates every chunk at least once) keeps accounted
/// resident bytes at or under the budget after every governed query, all
/// point reads return bit-exact payloads, and both eviction and
/// rehydration actually happened.
#[test]
fn memory_budget_holds_with_bit_exact_rehydration() {
    let dir = test_dir("gov_budget");
    let working_set = persist_fixture(&dir);
    let budget = working_set / 2;

    let mut gov_cfg = GovernorConfig::default();
    gov_cfg.memory_budget_bytes = budget;
    gov_cfg.check_interval = 1; // account after every query: tightest gate
    let mut opts = DurableOptions::default();
    opts.governor = Some(gov_cfg);
    let mut t = DurableTable::open(&dir, opts).expect("governed open");

    let ctx = QueryCtx::unbounded();
    let rounds = env_usize("CASPER_GOV_ROUNDS", 150).max(2 * ROWS as usize);
    let mut max_resident = 0usize;
    for i in 0..rounds {
        let key = (i as u64 % ROWS) * 2;
        let out = t.execute_governed(&point(key), &ctx).expect("point read");
        expect_rows(&out, key);
        max_resident = max_resident.max(t.resident_bytes());
    }
    let out = t.execute_governed(&count_all(), &ctx).expect("count");
    assert_eq!(out.result.scalar(), ROWS, "no rows lost to eviction");

    assert!(
        max_resident <= budget,
        "resident ceiling violated: {max_resident} > budget {budget}"
    );
    let stats = t.governor_stats().expect("governor configured");
    assert!(stats.evictions > 0, "budget at 50% must force evictions");
    assert!(
        stats.rehydrations > 0,
        "sweeping all keys must rehydrate evicted chunks"
    );
    assert_eq!(stats.resident_bytes as usize, t.resident_bytes());
}

/// Eviction-vs-pinned-snapshot stress: reader threads pin published
/// snapshots and must observe the exact row-count invariant while the
/// owner thread drives hydration/eviction churn with governed point reads
/// and count-neutral key moves. Seeded and env-tunable like
/// `tests/concurrency.rs`.
#[test]
fn eviction_respects_pinned_snapshots_under_concurrency() {
    let readers = env_usize("CASPER_STRESS_THREADS", 4);
    let rounds = env_usize("CASPER_GOV_ROUNDS", 150);
    for seed in env_seeds() {
        stress_round(seed, readers, rounds);
    }
}

fn stress_round(seed: u64, readers: usize, rounds: usize) {
    const EXTRA_KEYS: usize = 8;
    let dir = test_dir(&format!("gov_stress_{seed}"));
    let working_set = persist_fixture(&dir);

    let mut gov_cfg = GovernorConfig::default();
    gov_cfg.memory_budget_bytes = working_set / 2;
    gov_cfg.check_interval = 4;
    let mut opts = DurableOptions::default();
    opts.governor = Some(gov_cfg);
    let mut t = DurableTable::open(&dir, opts).expect("governed open");

    // Float EXTRA odd keys, then checkpoint so every chunk is clean again
    // (eviction needs clean, persisted candidates to work against).
    let mut next_key = 2 * ROWS + 1;
    let mut extras: Vec<u64> = Vec::new();
    for _ in 0..EXTRA_KEYS {
        let k = next_key;
        next_key += 2;
        t.execute(&HapQuery::Q4 {
            key: k,
            payload: payload_row(k),
        })
        .expect("seed extra");
        extras.push(k);
    }
    t.checkpoint().expect("post-seed checkpoint");
    let invariant = ROWS + EXTRA_KEYS as u64;

    let reader = t.reader();
    let stop = AtomicBool::new(false);
    let observations = AtomicU64::new(0);
    let mut rng = StdRng::seed_from_u64(seed);
    let ctx = QueryCtx::unbounded();

    std::thread::scope(|scope| {
        for _ in 0..readers {
            let handle = reader.clone();
            let stop = &stop;
            let observations = &observations;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let out = handle.execute(&count_all()).expect("snapshot count");
                    assert_eq!(
                        out.result.scalar(),
                        invariant,
                        "reader observed a torn state during eviction (seed {seed})"
                    );
                    // A pinned snapshot must stay internally stable even
                    // while the governor evicts underneath it.
                    let snap = handle.pin();
                    let (a, _) = snap.q2_count(0, u64::MAX).expect("pinned count");
                    let (b, _) = snap.q2_count(0, u64::MAX).expect("pinned recount");
                    assert_eq!(a, b, "pinned snapshot changed underneath a reader");
                    observations.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        while observations.load(Ordering::Relaxed) < readers as u64 {
            std::thread::yield_now();
        }

        for round in 0..rounds {
            // Governed point reads sweep the key space, hydrating evicted
            // chunks and pushing residency against the budget.
            let key = (rng.gen_range(0..ROWS)) * 2;
            let out = t.execute_governed(&point(key), &ctx).expect("point read");
            expect_rows(&out, key);
            // Every few rounds, a count-neutral move dirties a chunk so
            // the governor's checkpoint-then-evict ladder gets exercised.
            if round % 8 == 0 {
                let idx = rng.gen_range(0..extras.len());
                let to = next_key;
                next_key += 2;
                let from = extras[idx];
                extras[idx] = to;
                let out = t
                    .execute_governed(&HapQuery::Q6 { v: from, vnew: to }, &ctx)
                    .expect("key move");
                assert_eq!(out.result.scalar(), 1, "move must touch one row");
            }
        }
        stop.store(true, Ordering::Relaxed);
    });

    assert!(observations.load(Ordering::Relaxed) > 0);
    let out = t.execute(&count_all()).expect("final count");
    assert_eq!(out.result.scalar(), invariant);
    let stats = t.governor_stats().expect("governor configured");
    assert!(
        stats.evictions > 0,
        "a 50% budget must evict during the sweep (seed {seed})"
    );
}

/// Deadline expiry mid-scan surfaces typed, without poisoning anything: a
/// chunk whose (evicted) loader sleeps past the deadline forces the
/// boundary check after it to fire, and the very next unbounded query
/// over the same column returns the exact count.
#[test]
fn deadline_interrupts_mid_scan_without_poisoning() {
    let mut table = seed_table();
    table.hydrate_all().expect("hydrate");

    // Demote chunk 1 to a lazy slot whose hydration takes 30ms — far past
    // the 10ms deadline below, so the scan is *guaranteed* to observe
    // expiry at a chunk boundary rather than at dispatch.
    let store = table.column().chunks()[1]
        .get()
        .expect("hydrated chunk")
        .clone();
    let slow = Box::new(move || {
        std::thread::sleep(Duration::from_millis(30));
        Ok(store)
    });
    assert!(table.column_mut().evict_chunk(1, slow), "chunk 1 evictable");
    table.column().republish();

    let ctx = QueryCtx::unbounded().with_timeout(Duration::from_millis(10));
    let err = table.execute_ctx(&count_all(), &ctx).expect_err("deadline");
    assert_eq!(err, StorageError::DeadlineExceeded);

    // Cancellation is equally typed (and wins over any deadline).
    let token = CancelToken::new();
    token.cancel();
    let ctx = QueryCtx::unbounded().with_cancel(token);
    let err = table.execute_ctx(&count_all(), &ctx).expect_err("cancel");
    assert_eq!(err, StorageError::Cancelled);

    // Nothing was poisoned: the slow loader completed its hydration and
    // an unbounded query sees every row.
    let out = table.execute(&count_all()).expect("post-deadline count");
    assert_eq!(out.result.scalar(), ROWS);
}

/// Admission control sheds with a typed `Overloaded` error when the slot
/// gate is saturated, both from a directly held permit and under a
/// many-threads storm; a post-storm query is exact.
#[test]
fn overload_sheds_with_typed_error() {
    let table = seed_table();
    table.hydrate_all().expect("hydrate");
    let gov = Arc::new(Governor::new(GovernorConfig {
        query_slots: 1,
        admit_wait_ms: 1,
        ..GovernorConfig::default()
    }));
    let reader = table.reader().with_governor(Arc::clone(&gov));
    let ctx = QueryCtx::unbounded();

    // Deterministic shed: the only slot is held.
    let permit = gov.admit(false).expect("slot");
    let err = reader
        .execute_governed(&count_all(), &ctx)
        .expect_err("full gate");
    assert!(matches!(err, QueryError::Overloaded { .. }), "got {err}");

    // Storm while the slot stays held: every query from every thread must
    // come back as a typed shed — never a panic, never a wrong result.
    let sheds = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let handle = reader.clone();
            let ctx = QueryCtx::unbounded();
            let sheds = &sheds;
            scope.spawn(move || {
                for _ in 0..25 {
                    match handle.execute_governed(&count_all(), &ctx) {
                        Err(QueryError::Overloaded { waited_ms }) => {
                            assert!(waited_ms >= 1, "shed must report its wait");
                            sheds.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => panic!("admitted through a held slot"),
                        Err(other) => panic!("unexpected governed error: {other}"),
                    }
                }
            });
        }
    });
    assert_eq!(sheds.load(Ordering::Relaxed), 8 * 25);
    assert_eq!(gov.stats().shed, 8 * 25 + 1);

    // The storm passes, the permit drops, service resumes exactly.
    drop(permit);
    let out = reader
        .execute_governed(&count_all(), &ctx)
        .expect("slot freed");
    assert_eq!(out.result.scalar(), ROWS);
}

/// Engine-level panic isolation: a chunk whose loader panics takes down
/// neither the process nor its neighbors — the error is typed, carries
/// the implicated chunk, and every other chunk keeps serving.
#[test]
fn panic_is_isolated_to_the_implicated_chunk() {
    let mut table = seed_table();
    table.hydrate_all().expect("hydrate");
    table
        .column_mut()
        .repoint_chunk(1, CHUNK_VALUES, Box::new(|| panic!("injected chunk fault")));
    table.column().republish();

    let gov = Governor::new(GovernorConfig::default());
    let ctx = QueryCtx::unbounded();
    // Key 130 routes to chunk 1 (keys 128..256 with 64-key chunks).
    let err = table
        .execute_governed(&point(130), &gov, &ctx)
        .expect_err("chunk 1 panics");
    match err {
        QueryError::Panicked { chunk, ref detail } => {
            assert_eq!(chunk, Some(1), "panic must be attributed to chunk 1");
            assert!(detail.contains("injected"), "payload preserved: {detail}");
        }
        other => panic!("expected Panicked, got {other}"),
    }
    // The serving loop survives: chunk 0 answers exactly.
    let out = table
        .execute_governed(&point(2), &gov, &ctx)
        .expect("chunk 0");
    expect_rows(&out, 2);
    assert_eq!(gov.stats().panics, 1);
}

/// Durable-level containment, clean chunk: the panic heals — the chunk
/// re-points at its durable record and the *next* read rehydrates
/// bit-exact. No quarantine, no degraded mode, zero wrong results.
#[test]
fn durable_panic_on_clean_chunk_heals_from_record() {
    let dir = test_dir("gov_panic_clean");
    let mut opts = DurableOptions::default();
    opts.governor = Some(GovernorConfig::default());
    let mut t = DurableTable::create_from_table(&dir, seed_table(), opts).expect("create");
    let ctx = QueryCtx::unbounded();

    t.inject_chunk_panic(1);
    let err = t.execute_governed(&point(130), &ctx).expect_err("panics");
    match err {
        PersistError::Query(QueryError::Panicked { chunk, .. }) => assert_eq!(chunk, Some(1)),
        other => panic!("expected typed panic, got {other}"),
    }

    // Healed: the same query now answers from the rehydrated record.
    let out = t.execute_governed(&point(130), &ctx).expect("healed read");
    expect_rows(&out, 130);
    let out = t.execute_governed(&count_all(), &ctx).expect("count");
    assert_eq!(out.result.scalar(), ROWS);
    assert!(
        t.quarantined_chunks().is_empty(),
        "clean chunks heal, not quarantine"
    );
    assert!(!t.is_degraded());
    let stats = t.governor_stats().expect("governor");
    assert_eq!(stats.panics, 1);
    assert!(stats.rehydrations >= 1, "heal rehydrates from the record");
}

/// Durable-level containment, dirty chunk: the suspect memory is
/// quarantined (never re-encoded by a checkpoint), and a reopen
/// reconstructs the consistent state from the last good record plus the
/// WAL — the committed write survives, the panic leaves no wrong data.
#[test]
fn durable_panic_on_dirty_chunk_quarantines_and_reopen_recovers() {
    let dir = test_dir("gov_panic_dirty");
    let mut opts = DurableOptions::default();
    opts.governor = Some(GovernorConfig::default());
    let mut t = DurableTable::create_from_table(&dir, seed_table(), opts).expect("create");
    let ctx = QueryCtx::unbounded();

    // Dirty chunk 1 with a committed (sealed, group_commit=1) insert.
    let fresh = 131; // odd, routes into chunk 1's key range
    t.execute_governed(
        &HapQuery::Q4 {
            key: fresh,
            payload: payload_row(fresh),
        },
        &ctx,
    )
    .expect("dirtying insert");

    t.inject_chunk_panic(1);
    let err = t.execute_governed(&point(130), &ctx).expect_err("panics");
    assert!(matches!(
        err,
        PersistError::Query(QueryError::Panicked { chunk: Some(1), .. })
    ));
    assert_eq!(
        t.quarantined_chunks(),
        vec![1],
        "dirty chunk must quarantine, not heal"
    );
    // The quarantined chunk holds a committed write newer than its
    // durable record, so checkpointing must freeze (a checkpoint would
    // advance the WAL watermark past a write its pinned record lacks):
    let err = t.checkpoint().expect_err("checkpointing is frozen");
    assert!(
        matches!(
            err,
            PersistError::Storage(StorageError::Quarantined { chunk: 1, .. })
        ),
        "expected typed quarantine freeze, got {err}"
    );

    // Reopen: durable record + WAL replay reconstruct everything,
    // including the committed insert that preceded the panic.
    drop(t);
    let mut reopened = DurableTable::open(&dir, DurableOptions::default()).expect("reopen");
    let out = reopened.execute(&point(130)).expect("recovered read");
    expect_rows(&out, 130);
    let out = reopened.execute(&point(fresh)).expect("recovered insert");
    expect_rows(&out, fresh);
    let out = reopened.execute(&count_all()).expect("recovered count");
    assert_eq!(out.result.scalar(), ROWS + 1);
}
