//! Robustness to workload drift (§7.5): train a layout on one workload,
//! serve a shifted one, and find the plateau edge where re-optimization
//! becomes worthwhile.
//!
//! ```sh
//! cargo run --release --example robust_layout
//! ```

use casper::core::cost::{BlockTerms, CostConstants};
use casper::core::fm::{AccessDistribution, WorkloadSpec};
use casper::core::robust::{evaluate_robustness, mass_shift, rotational_shift};
use casper::core::solver::{dp, SolverConstraints};
use casper::core::FrequencyModel;

fn main() {
    let constants = CostConstants::paper();
    let constraints = SolverConstraints::none();
    let n = 256usize;
    // Train: reads on the upper quarter, inserts on the lower quarter.
    let trained_fm = FrequencyModel::from_distributions(
        n,
        &WorkloadSpec {
            point: Some((
                5000.0,
                AccessDistribution::Gaussian {
                    mean: 0.75,
                    std: 0.1,
                },
            )),
            insert: Some((
                5000.0,
                AccessDistribution::Gaussian {
                    mean: 0.25,
                    std: 0.1,
                },
            )),
            ..WorkloadSpec::none()
        },
    );
    let trained = dp::solve(&BlockTerms::from_fm(&trained_fm, &constants), &constraints).seg;
    println!("trained layout: {trained}");

    println!("\nrotational drift (access pattern moves around the domain):");
    println!("{:>10} {:>18}", "shift", "normalized latency");
    let mut cliff: Option<f64> = None;
    for i in 0..=20 {
        let frac = i as f64 * 0.025;
        let shifted = rotational_shift(&trained_fm, frac);
        let p = evaluate_robustness(&trained, &shifted, &constants, &constraints);
        let norm = p.normalized_latency();
        if cliff.is_none() && norm > 1.10 {
            cliff = Some(frac);
        }
        if i % 2 == 0 {
            println!("{:>9.0}% {:>18.3}", frac * 100.0, norm);
        }
    }
    match cliff {
        Some(f) => println!(
            "→ the layout absorbs up to ~{:.0}% rotation before losing >10% performance;\n  \
             beyond that, trigger re-optimization (the A′ arrow of Fig. 10).",
            f * 100.0
        ),
        None => println!("→ no cliff within 50% rotation."),
    }

    println!("\nmass drift (reads turn into writes and vice versa):");
    println!("{:>10} {:>18}", "shift", "normalized latency");
    for pct in [-25i32, -15, -5, 0, 5, 15, 25] {
        let shifted = mass_shift(&trained_fm, pct as f64 / 100.0);
        let p = evaluate_robustness(&trained, &shifted, &constants, &constraints);
        println!("{:>9}% {:>18.3}", pct, p.normalized_latency());
    }
    println!(
        "\nModest drift costs almost nothing — the Fig. 16 plateau — because the\n\
         trained partitions still cover the (slightly moved) hot regions."
    );
}
