//! Performance SLAs as layout constraints (§5, Eq. 21): cap the worst-case
//! insert latency and the worst-case point-query latency, and watch the
//! solver trade optimality for guarantees.
//!
//! ```sh
//! cargo run --release --example sla_tuning
//! ```

use casper::core::fm::{AccessDistribution, WorkloadSpec};
use casper::core::solver::{sla, LayoutOptimizer};
use casper::core::{CostConstants, FrequencyModel};

fn main() {
    let constants = CostConstants::paper();
    let n_blocks = 512usize;
    // A hybrid profile: reads across the domain, inserts at the end.
    let fm = FrequencyModel::from_distributions(
        n_blocks,
        &WorkloadSpec {
            point: Some((8900.0, AccessDistribution::Uniform)),
            insert: Some((1000.0, AccessDistribution::ZipfRecent { theta: 0.9 })),
            update: Some((
                100.0,
                AccessDistribution::Uniform,
                AccessDistribution::Uniform,
            )),
            ..WorkloadSpec::none()
        },
    );

    println!("unconstrained optimum:");
    let free = LayoutOptimizer::new(constants).optimize(&fm, 0);
    println!(
        "  {} → modeled cost {:.2} ms, worst-case insert {:.1} us",
        free.seg,
        free.est_cost / 1e6,
        sla::worst_insert_nanos(&constants, free.seg.partition_count()) / 1000.0
    );

    for sla_us in [25.0f64, 10.0, 5.0, 2.5] {
        let opt = LayoutOptimizer::new(constants).with_slas(Some(sla_us * 1000.0), None);
        let d = opt.optimize(&fm, 0);
        let worst = sla::worst_insert_nanos(&constants, d.seg.partition_count()) / 1000.0;
        println!("insert SLA {sla_us:>5.1} us:");
        println!(
            "  {} partitions → worst-case insert {:.1} us (≤ SLA: {}), modeled cost {:.2} ms (+{:.1}%)",
            d.seg.partition_count(),
            worst,
            worst <= sla_us,
            d.est_cost / 1e6,
            (d.est_cost / free.est_cost - 1.0) * 100.0
        );
    }

    for read_sla_us in [3.0f64, 1.5, 0.5] {
        let opt = LayoutOptimizer::new(constants).with_slas(None, Some(read_sla_us * 1000.0));
        let d = opt.optimize(&fm, 0);
        let mps = d.seg.max_partition_blocks();
        let worst = sla::worst_point_query_nanos(&constants, mps) / 1000.0;
        println!("read SLA {read_sla_us:>4.1} us:");
        println!(
            "  max partition {} blocks → worst-case point query {:.2} us (≤ SLA: {})",
            mps,
            worst,
            worst <= read_sla_us
        );
    }
    println!("\nTighter write SLAs force fewer partitions; tighter read SLAs force narrower ones.");
}
