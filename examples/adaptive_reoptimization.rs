//! Online adaptation (§1 "Positioning"): serve a drifting workload and let
//! the [`AdaptiveController`] decide when re-partitioning pays for itself.
//!
//! ```sh
//! cargo run --release --example adaptive_reoptimization
//! ```

use casper::engine::adapt::{AdaptConfig, AdaptDecision, AdaptiveController};
use casper::engine::{EngineConfig, LayoutMode, Table};
use casper::workload::{HapQuery, HapSchema, KeyDist, WorkloadGenerator};
use rand::prelude::*;
use std::time::Instant;

fn main() {
    let rows = 1u64 << 17;
    let gen = WorkloadGenerator::new(HapSchema::narrow(), rows, KeyDist::Uniform);
    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    config.chunk_values = 1 << 16;
    config.equi_partitions = 64;
    let mut table = Table::load_from_generator(&gen, config);

    let mut adapt_cfg = AdaptConfig::default();
    adapt_cfg.window = 2000;
    adapt_cfg.benefit_threshold = 1.15;
    let mut controller = AdaptiveController::new(adapt_cfg);

    // Three phases: reads hammer the low domain, then the high domain,
    // then inserts flood the middle — each phase invalidates the previous
    // layout.
    let mut rng = StdRng::seed_from_u64(99);
    let domain = gen.domain();
    let phases: [(&str, Box<dyn Fn(&mut StdRng) -> HapQuery>); 3] = [
        (
            "reads on low keys",
            Box::new(move |rng: &mut StdRng| HapQuery::Q1 {
                v: rng.gen_range(0..domain / 10) & !1,
                k: 2,
            }),
        ),
        (
            "reads on high keys",
            Box::new(move |rng: &mut StdRng| HapQuery::Q1 {
                v: (domain * 9 / 10 + rng.gen_range(0..domain / 10)) & !1,
                k: 2,
            }),
        ),
        (
            "inserts in the middle",
            Box::new(move |rng: &mut StdRng| {
                let key = (domain * 4 / 10 + rng.gen_range(0..domain / 5)) | 1;
                HapQuery::Q4 {
                    payload: HapSchema::narrow().payload_row(key),
                    key,
                }
            }),
        ),
    ];

    for (name, make) in phases {
        println!("\n▶ phase: {name}");
        let mut phase_ns = 0u128;
        let ops = 4000;
        for i in 0..ops {
            let q = make(&mut rng);
            let t = Instant::now();
            table.execute(&q).expect("execute");
            phase_ns += t.elapsed().as_nanos();
            controller.observe(&q);
            if i % 1000 == 999 {
                match controller.maybe_reoptimize(&mut table) {
                    AdaptDecision::Reoptimized { predicted_speedup } => println!(
                        "  [adapt] re-partitioned at op {} (predicted speedup {:.2}x)",
                        i + 1,
                        predicted_speedup
                    ),
                    AdaptDecision::KeepLayout { predicted_speedup } => println!(
                        "  [adapt] layout kept at op {} (potential speedup only {:.2}x)",
                        i + 1,
                        predicted_speedup
                    ),
                    AdaptDecision::TooFewSamples => {}
                }
            }
        }
        println!(
            "  phase mean latency: {:.1} us",
            phase_ns as f64 / ops as f64 / 1000.0
        );
    }
    println!(
        "\ntotal re-optimizations: {} — the controller re-partitions only when\n\
         the modeled benefit clears the threshold, exactly the offline-to-online\n\
         repurposing §1 describes.",
        controller.reoptimizations
    );
}
