//! Durability end-to-end: optimize a table, persist it, "restart", and
//! serve queries from the restored layout — no re-solve, no re-encode.
//!
//! ```bash
//! cargo run --release --example durable_restart
//! ```

use casper::engine::optimize::OptimizeOptions;
use casper::engine::{EngineConfig, LayoutMode, Table};
use casper::prelude::{DurableOptions, DurableTable};
use casper::workload::{HapQuery, HapSchema, KeyDist, Mix, MixKind, WorkloadGenerator};

fn main() {
    let dir = std::path::Path::new("target/durable_restart_demo");
    let _ = std::fs::remove_dir_all(dir);

    // Build + optimize a table for a skewed read-mostly workload.
    let rows = 100_000u64;
    let schema = HapSchema::narrow();
    let gen = WorkloadGenerator::new(schema, rows, KeyDist::Uniform);
    let mut config = EngineConfig::for_mode(LayoutMode::Casper);
    config.chunk_values = 32_768;
    let table = Table::load_from_generator(&gen, config);

    let mut durable =
        DurableTable::create_from_table(dir, table, DurableOptions::default()).expect("create");
    let sample = Mix::new(MixKind::ReadOnlySkewed, schema, rows).generate(2000, 42);
    let report = durable
        .optimize(&sample, &OptimizeOptions::default())
        .expect("optimize");
    println!(
        "optimized: {} partitions across {} chunks, {} compressed — checkpointed as generation {}",
        report.total_partitions(),
        report.chunks.len(),
        report
            .chunks
            .iter()
            .map(|c| c.compressed_partitions)
            .sum::<usize>(),
        durable.stats().generation,
    );

    // Some durable writes after the checkpoint.
    for i in 0..500u64 {
        let key = 2 * rows + 1 + 2 * i;
        durable
            .execute(&HapQuery::Q4 {
                key,
                payload: schema.payload_row(key),
            })
            .expect("write");
    }
    let rows_before = durable.len();
    drop(durable); // "crash" (all sealed batches survive)

    // Restart: the optimized layout comes back from disk.
    let solves = casper::core::solver::telemetry::solve_count();
    let encodes = casper::storage::compress::telemetry::encode_count();
    let t = std::time::Instant::now();
    let mut restored = DurableTable::open(dir, DurableOptions::default()).expect("open");
    println!(
        "reopened {} rows in {:.1} ms — {} solver calls, {} codec re-encodes",
        restored.len(),
        t.elapsed().as_secs_f64() * 1e3,
        casper::core::solver::telemetry::solve_count() - solves,
        casper::storage::compress::telemetry::encode_count() - encodes,
    );
    assert_eq!(restored.len(), rows_before);
    let out = restored
        .execute(&HapQuery::Q2 {
            vs: 0,
            ve: u64::MAX,
        })
        .expect("count");
    println!("count(*) = {} (cost: {:?})", out.result.scalar(), out.cost);
}
