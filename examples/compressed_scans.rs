//! Compression and the partitioning synergy (§6.2): dictionary and
//! frame-of-reference codecs, predicate pushdown on encoded data, and why
//! finer partitions compress better — plus RLE's update problem.
//!
//! ```sh
//! cargo run --release --example compressed_scans
//! ```

use casper::storage::compress::{compression_ratio, Codec, Dictionary, ForBlock, Rle};

fn main() {
    // A TPC-H-flavoured column: ~2000 distinct order totals, clustered.
    let values: Vec<u64> = (0..262_144u64)
        .map(|i| 900_000 + (i.wrapping_mul(2654435761) % 2000) * 50)
        .collect();
    let plain_bytes = values.len() * 8;
    println!(
        "column: {} values, {} KB plain",
        values.len(),
        plain_bytes / 1024
    );

    // Dictionary: order-preserving codes.
    let dict = Dictionary::encode(&values);
    println!(
        "dictionary: {} distinct values, {:?} codes, {} KB ({:.1}x)",
        dict.dict().len(),
        dict.width(),
        dict.encoded_bytes() / 1024,
        compression_ratio(plain_bytes, dict.encoded_bytes())
    );
    let in_range = dict.count_in_range(950_000, 980_000);
    println!("  predicate pushdown count [950k, 980k): {in_range} rows, no decompression");

    // Frame of reference over the whole column vs per-partition fragments.
    let whole = ForBlock::encode(&values);
    println!(
        "frame-of-reference (whole column): width {:?}, {} KB ({:.1}x)",
        whole.width(),
        whole.encoded_bytes() / 1024,
        compression_ratio(plain_bytes, whole.encoded_bytes())
    );
    let mut sorted = values.clone();
    sorted.sort_unstable();
    for parts in [16usize, 256] {
        let frag = sorted.len() / parts;
        let bytes: usize = sorted
            .chunks(frag)
            .map(|c| ForBlock::encode(c).encoded_bytes())
            .sum();
        println!(
            "frame-of-reference over {parts} sorted partitions: {} KB ({:.1}x) — \
             narrower ranges, narrower offsets",
            bytes / 1024,
            compression_ratio(plain_bytes, bytes)
        );
    }
    println!(
        "→ §6.2's synergy: \"Casper tends to finely partition areas that attract\n\
         more queries, thus enabling better delta compression\"."
    );

    // RLE: stellar ratio on sorted data, terrible update story.
    let rle = Rle::encode(&sorted);
    println!(
        "\nRLE (sorted): {} runs, {} KB ({:.1}x) — but one update touches ~{} values\n\
         (decode + re-encode), vs 1 for dictionary/FoR. That is why Casper\n\
         prefers dictionary/delta schemes for updatable columns.",
        rle.runs().len(),
        rle.encoded_bytes() / 1024,
        compression_ratio(plain_bytes, rle.encoded_bytes()),
        rle.update_cost_model()
    );
}
