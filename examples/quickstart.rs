//! Quickstart: load a column, capture a sample workload, let the optimizer
//! choose the layout, and watch the costs change.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use casper::core::fm::FmBuilder;
use casper::core::solver::LayoutOptimizer;
use casper::core::Op;
use casper::engine::calibrate::{calibrate, CalibrationConfig};
use casper::storage::ghost::GhostPlan;
use casper::storage::{BlockLayout, ChunkConfig, PartitionedChunk};

fn main() {
    // 1. A column of 64K values (even keys, so inserts can pick odd ones).
    let values: Vec<u64> = (0..65_536u64).map(|i| i * 2).collect();
    let layout = BlockLayout::new::<u64>(4096); // 512 values per block
    let n_blocks = layout.num_blocks(values.len());
    println!("column: {} values in {} blocks", values.len(), n_blocks);

    // 2. Capture a workload sample: point queries hammer the high end of
    //    the domain, inserts the low end (the Fig. 16a shape).
    let mut fm = FmBuilder::from_data(&values, layout.values_per_block());
    for i in 0..10_000u64 {
        let hot_read = 100_000 + (i * 73) % 31_000;
        fm.record(Op::Point(hot_read & !1));
        let hot_insert = (i * 37) % 26_000;
        fm.record(Op::Insert(hot_insert | 1));
        if i % 50 == 0 {
            fm.record(Op::Range(hot_read, hot_read + 2_000));
        }
    }
    let model = fm.finish();

    // 3. Calibrate the cost model on this machine (§4.5), then solve for
    //    the optimal layout and a 1% ghost budget.
    let mut cal = CalibrationConfig::quick();
    cal.block_bytes = 4096;
    let constants = calibrate(&cal);
    println!(
        "calibrated: RR={:.0}ns RW={:.0}ns SR={:.0}ns/blk SW={:.0}ns/blk",
        constants.rr, constants.rw, constants.sr, constants.sw
    );
    let optimizer = LayoutOptimizer::new(constants);
    let decision = optimizer.optimize(&model, values.len() / 100);
    println!("optimal layout: {}", decision.seg);
    println!(
        "ghost slots: {} total, hottest partition gets {}",
        decision.ghosts.total(),
        decision.ghosts.counts().iter().max().unwrap()
    );
    println!("modeled workload cost: {:.1} ms", decision.est_cost / 1e6);

    // 4. Materialize the chunk and run some operations.
    let mut chunk = PartitionedChunk::build(
        values,
        &decision.seg.to_spec(),
        layout,
        &decision.ghosts,
        ChunkConfig::default(),
    )
    .expect("build chunk");
    let r = chunk.point_query(120_000);
    println!(
        "point query for 120000: {} match(es), scanned {} values",
        r.positions.len(),
        r.cost.values_scanned
    );
    let w = chunk.insert(12_345, &[]).expect("insert");
    println!(
        "insert of 12345: {} random writes (ghost slots make this cheap)",
        w.cost.random_writes
    );
    let (count, cost) = chunk.range_count(100_000, 110_000);
    println!(
        "range count [100000, 110000): {count} rows, {} sequential block reads",
        cost.seq_reads
    );

    // 5. Compare against a naive single-partition layout.
    let naive = PartitionedChunk::single_partition(
        (0..65_536u64).map(|i| i * 2).collect(),
        layout,
        ChunkConfig::default(),
    )
    .expect("naive chunk");
    let naive_scan = naive.point_query(120_000).cost.values_scanned;
    println!(
        "same point query on an unpartitioned column scans {naive_scan} values — {}x more",
        naive_scan / r.cost.values_scanned.max(1)
    );
    let ghost_plan_even = GhostPlan::even(decision.seg.partition_count(), 655);
    println!(
        "(for contrast, an even ghost spread would give the hot partition only {} slots)",
        ghost_plan_even.counts()[0]
    );
}
