//! The paper's motivating scenario (§1): a dashboard-style hybrid workload
//! — analytical range queries and point lookups racing a steady stream of
//! ingests — executed end-to-end on all six layout modes.
//!
//! ```sh
//! cargo run --release --example hap_hybrid
//! ```

use casper::engine::calibrate::{calibrate, CalibrationConfig};
use casper::engine::optimize::{optimize_table, OptimizeOptions};
use casper::engine::{EngineConfig, LayoutMode, Table};
use casper::workload::{HapSchema, Mix, MixKind};
use std::time::Instant;

fn main() {
    let rows = 1u64 << 18;
    let ops = 3000usize;
    let mix = Mix::new(MixKind::HybridPointSkewed, HapSchema::narrow(), rows);
    let queries = mix.generate(ops, 7);
    let train = mix.generate(ops, 8);

    println!(
        "hybrid dashboard workload: {} rows, {} ops ({})",
        rows,
        ops,
        mix.kind.label()
    );
    println!(
        "{:<14} {:>12} {:>14}",
        "layout", "elapsed ms", "throughput op/s"
    );

    for mode in LayoutMode::all() {
        let mut config = EngineConfig::for_mode(mode);
        config.chunk_values = 1 << 17;
        config.equi_partitions = 64;
        let mut table = Table::load_from_generator(mix.generator(), config);
        if mode == LayoutMode::Casper {
            // Casper trains on a sample before serving (Fig. 10 A→B→C),
            // with cost constants calibrated on this machine (§4.5).
            let mut opts = OptimizeOptions::default();
            opts.constants = calibrate(&CalibrationConfig {
                block_bytes: config.block_bytes,
                ..CalibrationConfig::quick()
            });
            let report = optimize_table(&mut table, &train, &opts);
            println!(
                "  [casper] optimized {} chunks into {} partitions total",
                report.chunks.len(),
                report.total_partitions()
            );
        }
        let t = Instant::now();
        let mut checksum = 0u64;
        for q in &queries {
            checksum = checksum.wrapping_add(table.execute(q).expect("query").result.scalar());
        }
        let elapsed = t.elapsed();
        println!(
            "{:<14} {:>12.1} {:>14.0}   (checksum {})",
            mode.label(),
            elapsed.as_secs_f64() * 1000.0,
            ops as f64 / elapsed.as_secs_f64(),
            checksum
        );
    }
    println!("\nEvery mode returns the same checksum: six physical designs, one logical table.");
}
